"""Tests for the asyncio control socket and Prometheus exposition."""

import http.client
import socket
import threading

import pytest

from repro.control import ControlClient, ControlSocket, metric_name, render
from repro.telemetry.registry import CounterRegistry


def make_registry():
    reg = CounterRegistry()
    reg.counter("driver.rx_packets").value = 100
    reg.gauge("queue.depth").set(7)
    return reg


def make_merged():
    children = []
    for value in (10, 32):
        child = CounterRegistry()
        child.counter("driver.rx_packets").value = value
        children.append(child)
    merged = CounterRegistry.merge(children)
    ledger = CounterRegistry()
    ledger.counter("ingested").value = 42
    merged.mount("rss.0", ledger)
    return merged, children


class TestRender:
    def test_metric_name_sanitizes(self):
        assert metric_name("driver.rx_packets") == "repro_driver_rx_packets"
        assert metric_name("nic.0.imissed", "x") == "x_nic_0_imissed"

    def test_plain_registry(self):
        text = render(make_registry())
        assert "# TYPE repro_driver_rx_packets counter" in text
        assert "repro_driver_rx_packets 100" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert text.endswith("# EOF\n")

    def test_merged_registry_has_aggregate_and_labels(self):
        merged, _ = make_merged()
        text = render(merged)
        assert "repro_driver_rx_packets 42" in text
        assert 'repro_driver_rx_packets{core="0"} 10' in text
        assert 'repro_driver_rx_packets{core="1"} 32' in text
        assert "repro_rss_0_ingested 42" in text


class TestControlSocket:
    def test_line_protocol_read(self):
        with ControlSocket(make_registry()) as (host, port):
            with ControlClient(host, port) as client:
                assert client.read("driver.rx_packets") == 100
                assert client.cores() == 1
                with pytest.raises(KeyError):
                    client.read("nope")

    def test_merged_reads_and_cores(self):
        merged, children = make_merged()
        with ControlSocket(merged) as (host, port):
            with ControlClient(host, port) as client:
                assert client.cores() == 2
                assert client.read("driver.rx_packets") == 42
                assert client.read("core1.driver.rx_packets") == 32
                assert client.read("rss.0.ingested") == 42

    def test_live_updates_visible_mid_connection(self):
        reg = make_registry()
        handle = reg.counter("driver.rx_packets")
        with ControlSocket(reg) as (host, port):
            with ControlClient(host, port) as client:
                before = client.read("driver.rx_packets")
                handle.add(23)
                after = client.read("driver.rx_packets")
        assert (before, after) == (100, 123)

    def test_names_verb(self):
        with ControlSocket(make_registry()) as (host, port):
            with ControlClient(host, port) as client:
                assert client.names() == ["driver.rx_packets", "queue.depth"]
                assert client.names("driver.*") == ["driver.rx_packets"]

    def test_metrics_verb(self):
        merged, _ = make_merged()
        with ControlSocket(merged) as (host, port):
            with ControlClient(host, port) as client:
                text = client.metrics()
        assert 'repro_driver_rx_packets{core="0"} 10' in text
        assert text.rstrip().endswith("# EOF")

    def test_many_concurrent_clients(self):
        merged, children = make_merged()
        results = []
        errors = []

        def poll(host, port):
            try:
                with ControlClient(host, port) as client:
                    for _ in range(20):
                        results.append(client.read("driver.rx_packets"))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        with ControlSocket(merged) as (host, port):
            threads = [threading.Thread(target=poll, args=(host, port))
                       for _ in range(10)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        assert len(results) == 200
        assert set(results) == {42}

    def test_http_scrape(self):
        merged, _ = make_merged()
        with ControlSocket(merged) as (host, port):
            conn = http.client.HTTPConnection(host, port, timeout=5)
            conn.request("GET", "/metrics")
            resp = conn.getresponse()
            body = resp.read().decode()
            assert resp.status == 200
            assert resp.getheader("Content-Type").startswith("text/plain")
            assert "repro_driver_rx_packets 42" in body
            conn.close()

    def test_http_unknown_path_404(self):
        with ControlSocket(make_registry()) as (host, port):
            conn = http.client.HTTPConnection(host, port, timeout=5)
            conn.request("GET", "/bogus")
            assert conn.getresponse().status == 404
            conn.close()

    def test_unknown_verb_is_an_error_not_a_crash(self):
        with ControlSocket(make_registry()) as (host, port):
            sock = socket.create_connection((host, port), timeout=5)
            f = sock.makefile("rwb")
            f.write(b"FROB everything\nREAD driver.rx_packets\n")
            f.flush()
            assert f.readline().startswith(b"ERR unknown verb")
            assert f.readline() == b"driver.rx_packets 100\n"
            sock.close()

    def test_stop_is_idempotent_and_restartable_instance_rejected(self):
        server = ControlSocket(make_registry())
        server.start()
        server.stop()
        server.stop()  # no-op


class TestSteeringVerbs:
    """RETA reads and forced rebalances over the control socket."""

    class FakeRuntime:
        def __init__(self, fail=False):
            from types import SimpleNamespace

            table = SimpleNamespace(entries=[0, 1, 0, 1])
            self.ports = {0: SimpleNamespace(table=table)}
            self.fail = fail
            self.calls = []

        def rebalance(self, port=None):
            if self.fail:
                raise RuntimeError("no steering policy configured")
            self.calls.append(port)
            return 3

    def test_reta_and_rebalance_round_trip(self):
        runtime = self.FakeRuntime()
        with ControlSocket(make_registry(), runtime=runtime) as (host, port):
            with ControlClient(host, port) as client:
                assert client.reta() == [0, 1, 0, 1]
                assert client.reta(0) == [0, 1, 0, 1]
                assert client.rebalance() == 3
                assert client.rebalance(0) == 3
        assert runtime.calls == [None, 0]

    def test_errors_are_replies_not_crashes(self):
        with ControlSocket(make_registry()) as (host, port):
            with ControlClient(host, port) as client:
                with pytest.raises(KeyError):
                    client.reta()  # no runtime attached
                with pytest.raises(RuntimeError):
                    client.rebalance()
        runtime = self.FakeRuntime()
        with ControlSocket(make_registry(), runtime=runtime) as (host, port):
            with ControlClient(host, port) as client:
                with pytest.raises(KeyError):
                    client.reta(9)  # unknown port
                with pytest.raises(RuntimeError):
                    client.rebalance(9)

    def test_unconfigured_steering_is_an_error_reply(self):
        runtime = self.FakeRuntime(fail=True)
        with ControlSocket(make_registry(), runtime=runtime) as (host, port):
            with ControlClient(host, port) as client:
                with pytest.raises(RuntimeError) as err:
                    client.rebalance()
                assert "no steering policy" in str(err.value)

    def test_live_runtime_end_to_end(self):
        from repro.core.packetmill import PacketMill
        from repro.net.rss import RssConfig
        from repro.net.steering import SteeringPolicy
        from repro.net.trace import FiniteTrace, SkewedTraceGenerator

        def trace(port, core):
            return FiniteTrace(
                SkewedTraceGenerator(n_flows=500, zipf_s=1.6, seed=5), 4000)

        config = """
input :: FromDPDKDevice(PORT 0, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> CheckIPHeader -> DecIPTTL -> output;
"""
        runtime = PacketMill(
            config, trace=trace, n_cores=2,
            rss=RssConfig(steering=SteeringPolicy()),
        ).build_sharded()
        runtime.run_batches(32)
        with ControlSocket(runtime.registry, runtime=runtime) as (host, port):
            with ControlClient(host, port) as client:
                entries = client.reta()
                assert entries == runtime.ports[0].table.entries
                assert all(q in (0, 1) for q in entries)
                moved = client.rebalance()
                assert moved >= 0
                assert client.read("steering.port0.evals") >= 1
