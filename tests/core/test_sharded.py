"""Tests for the RSS-sharded runtime: identity, conservation, scoping."""

import pytest

from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.core.profile import RunProfile
from repro.core.sharded import ShardedRuntime
from repro.faults.audit import (
    ShardConservationError,
    assert_sharded_conserved,
    sharded_audit,
)
from repro.faults.schedule import RX_UNDERRUN, FaultSchedule, FaultSpec
from repro.net.rss import MEMPOOL_SHARED, RssConfig
from repro.net.trace import FiniteTrace, SkewedTraceGenerator
from repro.perf.runner import measure_sharded, measure_throughput

CONFIG = """
input :: FromDPDKDevice(PORT 0, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> CheckIPHeader -> DecIPTTL -> output;
"""


def finite_trace_factory(n_packets=2000, zipf_s=None, n_flows=1000, seed=3):
    def factory(port, core):
        return FiniteTrace(
            SkewedTraceGenerator(n_flows=n_flows, zipf_s=zipf_s, seed=seed),
            n_packets)
    return factory


def endless_trace_factory(seed=3):
    return lambda port, core: SkewedTraceGenerator(n_flows=5000, seed=seed)


def build_sharded(n_cores=2, trace=None, **kwargs):
    mill = PacketMill(CONFIG, trace=trace or finite_trace_factory(),
                      n_cores=n_cores, **kwargs)
    return mill.build_sharded()


class TestSingleCoreIdentity:
    """An n_cores=1 sharded runtime is bit-identical to the plain path."""

    def test_stats_bit_identical(self):
        plain = PacketMill(CONFIG, trace=finite_trace_factory()).build()
        plain.warmup(10)
        plain_run = plain.run(40)

        runtime = build_sharded(n_cores=1)
        runtime.warmup(10)
        runtime.run_batches(40)
        sharded_run = runtime.runs()[0]

        assert plain_run.stats.rx_packets == sharded_run.stats.rx_packets
        assert plain_run.stats.tx_packets == sharded_run.stats.tx_packets
        assert plain_run.stats.tx_bytes == sharded_run.stats.tx_bytes
        assert plain_run.stats.drops == sharded_run.stats.drops
        assert plain_run.elapsed_ns == sharded_run.elapsed_ns
        assert plain_run.counters == sharded_run.counters

    def test_measured_point_bit_identical(self):
        plain = measure_throughput(
            PacketMill(CONFIG, trace=endless_trace_factory()).build(),
            batches=120, warmup_batches=60)
        sharded = measure_sharded(
            PacketMill(CONFIG, trace=endless_trace_factory(),
                       n_cores=1).build_sharded(),
            batches=120, warmup_batches=60)
        assert plain.pps == sharded.pps
        assert plain.gbps == sharded.gbps
        assert plain.ns_per_packet == sharded.ns_per_packet
        assert plain.bound_by == sharded.bound_by


class TestShardedExecution:
    def test_replicas_split_the_stream(self):
        runtime = build_sharded(n_cores=4)
        runtime.run_until_eof()
        per_core_rx = [b.driver.stats.rx_packets for b in runtime.replicas]
        assert sum(per_core_rx) == 2000
        # Uniform flows: every queue sees real traffic.
        assert all(rx > 0 for rx in per_core_rx)

    def test_deterministic_across_builds(self):
        a = build_sharded(n_cores=3)
        b = build_sharded(n_cores=3)
        a.run_until_eof()
        b.run_until_eof()
        for ra, rb in zip(a.replicas, b.replicas):
            assert ra.driver.stats.rx_packets == rb.driver.stats.rx_packets
            assert ra.cpu.elapsed_ns() == rb.cpu.elapsed_ns()

    def test_run_until_eof_cap_raises(self):
        runtime = build_sharded(n_cores=2, trace=endless_trace_factory())
        with pytest.raises(RuntimeError):
            runtime.run_until_eof(max_batches=8)

    def test_from_profile_builds_sharded_runtime(self):
        profile = RunProfile(trace=finite_trace_factory(), n_cores=2)
        runtime = PacketMill.from_profile(CONFIG, profile).build_runtime()
        assert isinstance(runtime, ShardedRuntime)
        assert runtime.n_cores == 2

    def test_shared_mempool_option(self):
        runtime = build_sharded(
            n_cores=2, rss=RssConfig(mempool=MEMPOOL_SHARED))
        models = {id(b.model) for b in runtime.replicas}
        assert len(models) == 1
        runtime.run_until_eof()
        assert_sharded_conserved(runtime)


class TestShardedConservation:
    def test_uniform_load_conserves_exactly(self):
        runtime = build_sharded(n_cores=4)
        runtime.run_until_eof()
        audit = assert_sharded_conserved(runtime)
        assert audit["offered"] == 2000
        assert audit["balance"] == 0
        assert audit["forwarded"] + audit["dropped"] + \
            audit["rx_errors"] + audit["in_flight"] == 2000

    def test_elephant_flow_drops_are_counted(self):
        runtime = build_sharded(
            n_cores=4,
            trace=finite_trace_factory(n_packets=30_000, zipf_s=1.6),
            rss=RssConfig(backlog_cap=256))
        runtime.run_until_eof()
        audit = assert_sharded_conserved(runtime)
        # The hot queue overflowed its backlog -- but every loss has a
        # counter and the global books still balance.
        assert sum(p["rss_dropped"] for p in audit["ports"].values()) > 0
        assert audit["balance"] == 0

    def test_audit_detects_cooked_books(self):
        runtime = build_sharded(n_cores=2)
        runtime.run_until_eof()
        runtime.replicas[0].driver.stats  # run is done and balanced
        # Cook one queue's steering ledger and the audit must object.
        runtime.ports[0].registry.counter("q0.steered").value += 5
        with pytest.raises(ShardConservationError):
            assert_sharded_conserved(runtime)


class TestPerQueueFaultScoping:
    def test_queue_scoped_fault_only_arms_its_replica(self):
        schedule = FaultSchedule(
            [FaultSpec(RX_UNDERRUN, start=0, stop=50, probability=0.9,
                       queue=1)],
            seed=7)
        runtime = build_sharded(n_cores=3, faults=schedule)
        assert runtime.replicas[0].injector is None
        assert runtime.replicas[1].injector is not None
        assert runtime.replicas[2].injector is None

    def test_unscoped_fault_arms_every_replica(self):
        schedule = FaultSchedule(
            [FaultSpec(RX_UNDERRUN, start=0, stop=50, probability=0.9)],
            seed=7)
        runtime = build_sharded(n_cores=2, faults=schedule)
        assert all(b.injector is not None for b in runtime.replicas)

    def test_faulted_shard_still_conserves(self):
        schedule = FaultSchedule(
            [FaultSpec(RX_UNDERRUN, start=0, stop=30, probability=0.8,
                       queue=0)],
            seed=11)
        runtime = build_sharded(n_cores=2, faults=schedule)
        runtime.run_until_eof()
        audit = sharded_audit(runtime)
        assert audit["errors"] == []
        assert audit["balance"] == 0


class TestMergedTelemetry:
    def test_aggregate_equals_sum_of_cores(self):
        runtime = build_sharded(n_cores=3)
        runtime.run_until_eof()
        merged = runtime.registry
        total = merged.get("driver.rx_packets")
        per_core = [merged.get("core%d.driver.rx_packets" % i)
                    for i in range(3)]
        assert total == sum(per_core)
        assert per_core == merged.per_core("driver.rx_packets")

    def test_rss_ledger_mounted(self):
        runtime = build_sharded(n_cores=2)
        runtime.run_until_eof()
        assert runtime.registry.get("rss.0.ingested") == 2000
        assert runtime.registry.get("rss.0.q0.steered") + \
            runtime.registry.get("rss.0.q1.steered") == 2000

    def test_describe_mentions_every_core(self):
        runtime = build_sharded(n_cores=2)
        text = runtime.describe()
        assert "core 0" in text and "core 1" in text and "port 0" in text
