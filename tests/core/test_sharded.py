"""Tests for the RSS-sharded runtime: identity, conservation, scoping."""

import pytest

from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.core.profile import RunProfile
from repro.core.sharded import ShardedRuntime
from repro.faults.audit import (
    ShardConservationError,
    assert_sharded_conserved,
    sharded_audit,
)
from repro.faults.schedule import RX_UNDERRUN, FaultSchedule, FaultSpec
from repro.net.rss import MEMPOOL_SHARED, RssConfig
from repro.net.trace import FiniteTrace, SkewedTraceGenerator
from repro.perf.runner import measure_sharded, measure_throughput

CONFIG = """
input :: FromDPDKDevice(PORT 0, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> CheckIPHeader -> DecIPTTL -> output;
"""


def finite_trace_factory(n_packets=2000, zipf_s=None, n_flows=1000, seed=3):
    def factory(port, core):
        return FiniteTrace(
            SkewedTraceGenerator(n_flows=n_flows, zipf_s=zipf_s, seed=seed),
            n_packets)
    return factory


def endless_trace_factory(seed=3):
    return lambda port, core: SkewedTraceGenerator(n_flows=5000, seed=seed)


def build_sharded(n_cores=2, trace=None, **kwargs):
    mill = PacketMill(CONFIG, trace=trace or finite_trace_factory(),
                      n_cores=n_cores, **kwargs)
    return mill.build_sharded()


class TestSingleCoreIdentity:
    """An n_cores=1 sharded runtime is bit-identical to the plain path."""

    def test_stats_bit_identical(self):
        plain = PacketMill(CONFIG, trace=finite_trace_factory()).build()
        plain.warmup(10)
        plain_run = plain.run(40)

        runtime = build_sharded(n_cores=1)
        runtime.warmup(10)
        runtime.run_batches(40)
        sharded_run = runtime.runs()[0]

        assert plain_run.stats.rx_packets == sharded_run.stats.rx_packets
        assert plain_run.stats.tx_packets == sharded_run.stats.tx_packets
        assert plain_run.stats.tx_bytes == sharded_run.stats.tx_bytes
        assert plain_run.stats.drops == sharded_run.stats.drops
        assert plain_run.elapsed_ns == sharded_run.elapsed_ns
        assert plain_run.counters == sharded_run.counters

    def test_measured_point_bit_identical(self):
        plain = measure_throughput(
            PacketMill(CONFIG, trace=endless_trace_factory()).build(),
            batches=120, warmup_batches=60)
        sharded = measure_sharded(
            PacketMill(CONFIG, trace=endless_trace_factory(),
                       n_cores=1).build_sharded(),
            batches=120, warmup_batches=60)
        assert plain.pps == sharded.pps
        assert plain.gbps == sharded.gbps
        assert plain.ns_per_packet == sharded.ns_per_packet
        assert plain.bound_by == sharded.bound_by


class TestShardedExecution:
    def test_replicas_split_the_stream(self):
        runtime = build_sharded(n_cores=4)
        runtime.run_until_eof()
        per_core_rx = [b.driver.stats.rx_packets for b in runtime.replicas]
        assert sum(per_core_rx) == 2000
        # Uniform flows: every queue sees real traffic.
        assert all(rx > 0 for rx in per_core_rx)

    def test_deterministic_across_builds(self):
        a = build_sharded(n_cores=3)
        b = build_sharded(n_cores=3)
        a.run_until_eof()
        b.run_until_eof()
        for ra, rb in zip(a.replicas, b.replicas):
            assert ra.driver.stats.rx_packets == rb.driver.stats.rx_packets
            assert ra.cpu.elapsed_ns() == rb.cpu.elapsed_ns()

    def test_run_until_eof_cap_raises(self):
        runtime = build_sharded(n_cores=2, trace=endless_trace_factory())
        with pytest.raises(RuntimeError):
            runtime.run_until_eof(max_batches=8)

    def test_from_profile_builds_sharded_runtime(self):
        profile = RunProfile(trace=finite_trace_factory(), n_cores=2)
        runtime = PacketMill.from_profile(CONFIG, profile).build_runtime()
        assert isinstance(runtime, ShardedRuntime)
        assert runtime.n_cores == 2

    def test_shared_mempool_option(self):
        runtime = build_sharded(
            n_cores=2, rss=RssConfig(mempool=MEMPOOL_SHARED))
        models = {id(b.model) for b in runtime.replicas}
        assert len(models) == 1
        runtime.run_until_eof()
        assert_sharded_conserved(runtime)


class TestShardedConservation:
    def test_uniform_load_conserves_exactly(self):
        runtime = build_sharded(n_cores=4)
        runtime.run_until_eof()
        audit = assert_sharded_conserved(runtime)
        assert audit["offered"] == 2000
        assert audit["balance"] == 0
        assert audit["forwarded"] + audit["dropped"] + \
            audit["rx_errors"] + audit["in_flight"] == 2000

    def test_elephant_flow_drops_are_counted(self):
        runtime = build_sharded(
            n_cores=4,
            trace=finite_trace_factory(n_packets=30_000, zipf_s=1.6),
            rss=RssConfig(backlog_cap=256))
        runtime.run_until_eof()
        audit = assert_sharded_conserved(runtime)
        # The hot queue overflowed its backlog -- but every loss has a
        # counter and the global books still balance.
        assert sum(p["rss_dropped"] for p in audit["ports"].values()) > 0
        assert audit["balance"] == 0

    def test_audit_detects_cooked_books(self):
        runtime = build_sharded(n_cores=2)
        runtime.run_until_eof()
        runtime.replicas[0].driver.stats  # run is done and balanced
        # Cook one queue's steering ledger and the audit must object.
        runtime.ports[0].registry.counter("q0.steered").value += 5
        with pytest.raises(ShardConservationError):
            assert_sharded_conserved(runtime)


class TestPerQueueFaultScoping:
    def test_queue_scoped_fault_only_arms_its_replica(self):
        schedule = FaultSchedule(
            [FaultSpec(RX_UNDERRUN, start=0, stop=50, probability=0.9,
                       queue=1)],
            seed=7)
        runtime = build_sharded(n_cores=3, faults=schedule)
        assert runtime.replicas[0].injector is None
        assert runtime.replicas[1].injector is not None
        assert runtime.replicas[2].injector is None

    def test_unscoped_fault_arms_every_replica(self):
        schedule = FaultSchedule(
            [FaultSpec(RX_UNDERRUN, start=0, stop=50, probability=0.9)],
            seed=7)
        runtime = build_sharded(n_cores=2, faults=schedule)
        assert all(b.injector is not None for b in runtime.replicas)

    def test_faulted_shard_still_conserves(self):
        schedule = FaultSchedule(
            [FaultSpec(RX_UNDERRUN, start=0, stop=30, probability=0.8,
                       queue=0)],
            seed=11)
        runtime = build_sharded(n_cores=2, faults=schedule)
        runtime.run_until_eof()
        audit = sharded_audit(runtime)
        assert audit["errors"] == []
        assert audit["balance"] == 0


class TestMergedTelemetry:
    def test_aggregate_equals_sum_of_cores(self):
        runtime = build_sharded(n_cores=3)
        runtime.run_until_eof()
        merged = runtime.registry
        total = merged.get("driver.rx_packets")
        per_core = [merged.get("core%d.driver.rx_packets" % i)
                    for i in range(3)]
        assert total == sum(per_core)
        assert per_core == merged.per_core("driver.rx_packets")

    def test_rss_ledger_mounted(self):
        runtime = build_sharded(n_cores=2)
        runtime.run_until_eof()
        assert runtime.registry.get("rss.0.ingested") == 2000
        assert runtime.registry.get("rss.0.q0.steered") + \
            runtime.registry.get("rss.0.q1.steered") == 2000

    def test_describe_mentions_every_core(self):
        runtime = build_sharded(n_cores=2)
        text = runtime.describe()
        assert "core 0" in text and "core 1" in text and "port 0" in text


class TestSteeringIntegration:
    """The adaptive steering loop riding the sharded runtime."""

    def _skewed(self, steering=None, n_packets=8000, backlog_cap=64,
                n_cores=4):
        from repro.net.steering import SteeringPolicy  # noqa: F401

        return build_sharded(
            n_cores=n_cores,
            trace=finite_trace_factory(n_packets=n_packets, zipf_s=1.6,
                                       n_flows=5000, seed=11),
            rss=RssConfig(backlog_cap=backlog_cap, steering=steering))

    def test_steering_run_conserves_and_migrates(self):
        from repro.net.steering import SteeringPolicy

        runtime = self._skewed(SteeringPolicy())
        runtime.run_until_eof()
        assert_sharded_conserved(runtime)
        mq = runtime.ports[0]
        assert sum(mq.bucket_counts()) == mq.ingested
        assert runtime.registry.get("steering.port0.moves") > 0
        assert runtime.registry.get("rss.0.reta_moves") == \
            runtime.registry.get("steering.port0.moves")

    def test_steering_relieves_the_hot_queue(self):
        from repro.net.steering import SteeringPolicy

        def arrivals(runtime):
            mq = runtime.ports[0]
            return [mq.steered(q) + mq.dropped(q)
                    for q in range(runtime.n_cores)]

        static = self._skewed(None)
        static.run_until_eof()
        steered = self._skewed(SteeringPolicy())
        steered.run_until_eof()

        def imbalance(arr):
            return max(arr) / (sum(arr) / len(arr))

        assert imbalance(arrivals(steered)) < imbalance(arrivals(static))
        assert steered.ports[0].dropped() <= static.ports[0].dropped()

    def test_disabled_steering_is_bit_identical_to_pr8(self):
        baseline = self._skewed(None)
        baseline.run_until_eof()
        again = self._skewed(None)
        again.run_until_eof()
        assert baseline.merged_snapshot() == again.merged_snapshot()
        # No steering names, no bucket accounting, no dispatch ledger.
        names = list(baseline.registry.names())
        assert not any(n.startswith("steering.") for n in names)
        assert not any("bucket" in n for n in names)
        assert baseline.ports[0].bucket_counts() is None
        with pytest.raises(RuntimeError):
            baseline.rebalance()

    def test_single_core_steering_never_migrates(self):
        from repro.net.steering import SteeringPolicy

        runtime = self._skewed(SteeringPolicy(), n_cores=1)
        runtime.run_until_eof()
        assert_sharded_conserved(runtime)
        assert runtime.registry.get("steering.port0.moves") == 0
        assert runtime.ports[0].table.entries == \
            [0] * len(runtime.ports[0].table.entries)

    def test_forced_rebalance_updates_the_table(self):
        from repro.net.steering import SteeringPolicy

        # A huge trigger keeps the automatic loop idle, so any table
        # change comes from the forced pass alone.
        runtime = self._skewed(SteeringPolicy(trigger=1e9, settle=1.0))
        runtime.run_batches(64)
        before = list(runtime.ports[0].table.entries)
        moved = runtime.rebalance()
        after = runtime.ports[0].table.entries
        assert moved == sum(1 for b, a in zip(before, after) if b != a)
        runtime.run_until_eof()
        assert_sharded_conserved(runtime)

    def test_describe_mentions_steering(self):
        from repro.net.steering import SteeringPolicy

        runtime = self._skewed(SteeringPolicy())
        runtime.run_batches(32)
        assert "steering:" in runtime.describe()
        assert "steering:" not in self._skewed(None).describe()
