"""Tests for SpecializedBinary and MeasuredRun."""

import pytest

from repro.core import nfs
from repro.core.binary import MeasuredRun
from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.hw.params import MachineParams
from repro.net.trace import FixedSizeTraceGenerator, TraceSpec


def build(options=None):
    trace = lambda port, core: FixedSizeTraceGenerator(512, TraceSpec(seed=4))
    return PacketMill(nfs.forwarder(), options or BuildOptions.vanilla(),
                      params=MachineParams(freq_ghz=2.0), trace=trace).build()


class TestMeasuredRun:
    def _run(self):
        return MeasuredRun(
            packets=1000, tx_packets=1000, tx_bytes=512000, drops=0,
            elapsed_ns=100_000.0, instructions=500_000.0,
            total_cycles=250_000.0, counters={"llc_loads": 1000},
        )

    def test_derived_metrics(self):
        run = self._run()
        assert run.ns_per_packet == 100.0
        assert run.cycles_per_packet == 250.0
        assert run.ipc == 2.0
        assert run.mean_frame_len == 512.0

    def test_zero_packets_safe(self):
        run = MeasuredRun(0, 0, 0, 0, 0.0, 0.0, 0.0, {})
        assert run.ns_per_packet == float("inf")
        assert run.ipc == 0.0
        assert run.mean_frame_len == 0.0


class TestSpecializedBinary:
    def test_measure_resets_then_accumulates(self):
        binary = build()
        first = binary.measure(batches=60, warmup_batches=60)
        second = binary.measure(batches=60, warmup_batches=60)
        assert first.packets == second.packets == 60 * 32
        # Steady state: repeated measurements agree (cache warm-up tails
        # and dispatch sampling keep a little noise).
        assert second.ns_per_packet == pytest.approx(first.ns_per_packet, rel=0.12)

    def test_warmup_resets_counters(self):
        binary = build()
        binary.warmup(10)
        assert binary.cpu.elapsed_ns() == 0
        assert binary.driver.stats.rx_packets == 0

    def test_describe(self):
        binary = build(BuildOptions.packetmill())
        text = binary.describe()
        assert "xchange" in text
        assert "elements: 3" in text
        assert "2.0 GHz" in text

    def test_element_accessor(self):
        binary = build()
        assert binary.element("input").decl.class_name == "FromDPDKDevice"
        with pytest.raises(KeyError):
            binary.element("nope")

    def test_packet_layout_accessor(self):
        binary = build()
        assert binary.packet_layout().has_field("length")

    def test_run_without_warmup_includes_cold_misses(self):
        cold = build()
        cold_run = cold.run(20)
        warm = build()
        warm_run = warm.measure(batches=20, warmup_batches=60)
        assert cold_run.counters["llc_misses"] > warm_run.counters["llc_misses"]
