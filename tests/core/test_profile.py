"""RunProfile: the consolidated config object behind PacketMill kwargs."""

from repro.compiler.runtime import ExecutionTier, TierPolicy
from repro.core.nfs import router
from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.core.profile import RunProfile
from repro.exec import cache as exec_cache
from repro.hw.params import MachineParams
from repro.perf.runner import measure_throughput


def test_defaults_match_packetmill_defaults():
    profile = RunProfile()
    via_profile = PacketMill.from_profile(router(), profile)
    via_kwargs = PacketMill(router())
    assert via_profile.options == via_kwargs.options
    assert via_profile.params == via_kwargs.params
    assert via_profile.burst == via_kwargs.burst
    assert via_profile.tier_policy == via_kwargs.tier_policy


def test_kwargs_shim_builds_the_same_profile():
    options = BuildOptions.packetmill()
    params = MachineParams().at_frequency(2.3)
    mill = PacketMill(router(), options, params=params, seed=3, burst=16,
                      tier="codegen")
    assert mill.profile == RunProfile(options=options, params=params,
                                      seed=3, burst=16, tier="codegen")


def test_from_profile_measures_identically_to_kwargs():
    options = BuildOptions.packetmill()
    params = MachineParams().at_frequency(2.3)
    exec_cache.reset_caches()
    a = measure_throughput(
        PacketMill.from_profile(
            router(), RunProfile(options=options, params=params)).build(),
        batches=40, warmup_batches=10)
    exec_cache.reset_caches()
    b = measure_throughput(
        PacketMill(router(), options, params=params).build(),
        batches=40, warmup_batches=10)
    assert a == b


def test_with_overrides_is_a_functional_update():
    base = RunProfile(options=BuildOptions.packetmill(), seed=1)
    swept = base.with_overrides(seed=2, tier="interpreter")
    assert base.seed == 1 and base.tier is None
    assert swept.seed == 2 and swept.tier == "interpreter"
    assert swept.options == base.options


def test_describe_lists_only_non_defaults():
    assert RunProfile().describe() == "(defaults)"
    text = RunProfile(seed=9, tier="codegen").describe()
    assert "seed=9" in text and "codegen" in text
    assert "burst" not in text


def test_tier_field_accepts_enum_and_policy():
    for tier in (ExecutionTier.CODEGEN, "codegen",
                 TierPolicy(tier="codegen", route_memo=False)):
        mill = PacketMill.from_profile(router(), RunProfile(tier=tier))
        assert mill.tier_policy.tier in ("codegen", ExecutionTier.CODEGEN)
