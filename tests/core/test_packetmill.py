"""Integration tests for the PacketMill build pipeline (paper Fig. 3)."""

import pytest

from repro.core import nfs
from repro.core.options import BuildOptions, MetadataModel
from repro.core.packetmill import BuildError, PacketMill
from repro.hw.params import MachineParams
from repro.net.trace import FixedSizeTraceGenerator, TraceSpec


def mill(config=None, options=None, freq=2.3, frame=256, seed=0):
    params = MachineParams(freq_ghz=freq)
    trace = lambda port, core: FixedSizeTraceGenerator(frame, TraceSpec(seed=seed + port))
    return PacketMill(config or nfs.forwarder(), options or BuildOptions.vanilla(),
                      params=params, trace=trace, seed=seed)


class TestBuild:
    def test_build_produces_runnable_binary(self):
        binary = mill().build()
        run = binary.measure(batches=20, warmup_batches=10)
        assert run.packets == 640
        assert run.elapsed_ns > 0
        assert run.ipc > 0

    def test_static_graph_allocates_static_state(self):
        binary = mill(options=BuildOptions.static()).build()
        kinds = {e.state_region.kind for e in binary.graph.all_elements()}
        assert kinds == {"static"}

    def test_dynamic_graph_allocates_heap_state(self):
        binary = mill(options=BuildOptions.vanilla()).build()
        kinds = {e.state_region.kind for e in binary.graph.all_elements()}
        assert kinds == {"heap"}

    def test_constant_embedding_removes_param_loads(self):
        vanilla = mill(options=BuildOptions.vanilla()).build()
        constant = mill(options=BuildOptions.constant()).build()
        for name, program in constant.exec_programs.items():
            base = vanilla.exec_programs[name]
            assert len(program.mem_ops) <= len(base.mem_ops)
            assert program.instructions <= base.instructions
        total_base = sum(p.instructions for p in vanilla.exec_programs.values())
        total_const = sum(p.instructions for p in constant.exec_programs.values())
        assert total_const < total_base

    def test_metadata_models_selected(self):
        for model in MetadataModel:
            binary = mill(options=BuildOptions.metadata(model)).build()
            assert binary.model.name == model.value

    def test_no_dpdk_ports_rejected(self):
        bad = PacketMill("a :: Counter -> Discard;", BuildOptions.vanilla())
        with pytest.raises(BuildError):
            bad.build()

    def test_shared_trace_instance(self):
        trace = FixedSizeTraceGenerator(128, TraceSpec(seed=3))
        binary = PacketMill(nfs.forwarder(), trace=trace).build()
        assert binary.trace is trace


class TestReordering:
    def test_reorder_changes_packet_layout(self):
        plain = mill(options=BuildOptions(lto=True)).build()
        reordered = mill(options=BuildOptions.lto_reorder()).build()
        plain_offsets = {
            f.name: plain.packet_layout().offset_of(f.name)
            for f in plain.packet_layout().fields
        }
        hot_offsets = {
            f.name: reordered.packet_layout().offset_of(f.name)
            for f in reordered.packet_layout().fields
        }
        assert plain_offsets != hot_offsets

    def test_reorder_packs_hot_fields_into_line0(self):
        reordered = mill(config=nfs.router(), options=BuildOptions.lto_reorder()).build()
        layout = reordered.packet_layout()
        # The RX-conversion-written fields end up in the first cache line.
        hot = ["length", "data_ptr", "rss_anno", "vlan_anno"]
        assert layout.lines_touched(hot) == 1

    def test_reorder_reduces_meta_lines_touched(self):
        plain = mill(options=BuildOptions(lto=True)).build()
        reordered = mill(options=BuildOptions.lto_reorder()).build()

        def meta_lines(binary):
            lines = set()
            for program in binary.exec_programs.values():
                for op in program.mem_ops:
                    if op.target == "packet_meta":
                        lines.add(op.offset // 64)
            for program in (binary.pmds[0].rx_exec, binary.pmds[0].tx_exec):
                for op in program.mem_ops:
                    if op.target == "packet_meta":
                        lines.add(op.offset // 64)
            return len(lines)

        assert meta_lines(reordered) < meta_lines(plain)

    def test_reorder_improves_forwarder_performance(self):
        plain = mill(options=BuildOptions(lto=True)).build()
        reordered = mill(options=BuildOptions.lto_reorder()).build()
        plain_run = plain.measure(batches=120, warmup_batches=60)
        reordered_run = reordered.measure(batches=120, warmup_batches=60)
        assert reordered_run.ns_per_packet < plain_run.ns_per_packet

    def test_reorder_rejected_for_xchange(self):
        with pytest.raises(Exception):
            mill(options=BuildOptions(
                lto=True, reorder_metadata=True,
                metadata_model=MetadataModel.XCHANGE,
            )).build()


class TestMulticore:
    def test_build_multicore_shares_memory(self):
        binaries = mill(config=nfs.nat_router()).build_multicore(2)
        assert len(binaries) == 2
        assert binaries[0].mem is binaries[1].mem
        assert binaries[0].cpu.core_id == 0
        assert binaries[1].cpu.core_id == 1

    def test_multicore_disjoint_addresses(self):
        binaries = mill().build_multicore(2)
        pool_a = binaries[0].model.mempool.region
        pool_b = binaries[1].model.mempool.region
        assert pool_a.end <= pool_b.base or pool_b.end <= pool_a.base

    def test_multicore_rejects_zero(self):
        with pytest.raises(BuildError):
            mill().build_multicore(0)

    def test_multicore_runs(self):
        binaries = mill().build_multicore(2)
        for binary in binaries:
            binary.warmup(10)
        for _ in range(10):
            for binary in binaries:
                binary.driver.step()
        for binary in binaries:
            run = binary.run(0)
            assert run.packets == 320


class TestVariantOrdering:
    """The headline performance relationships, as an integration test."""

    def _ns(self, options, config=None):
        binary = mill(config=config or nfs.router(), options=options, frame=1024).build()
        return binary.measure(batches=120, warmup_batches=60).ns_per_packet

    def test_full_ordering_on_router(self):
        vanilla = self._ns(BuildOptions.vanilla())
        static = self._ns(BuildOptions.static())
        all_opts = self._ns(BuildOptions.all_code_opts())
        packetmill = self._ns(BuildOptions.packetmill())
        assert packetmill < all_opts < static < vanilla

    def test_metadata_ordering_on_forwarder(self):
        copying = self._ns(BuildOptions.metadata(MetadataModel.COPYING), nfs.forwarder())
        overlay = self._ns(BuildOptions.metadata(MetadataModel.OVERLAYING), nfs.forwarder())
        xchange = self._ns(BuildOptions.metadata(MetadataModel.XCHANGE), nfs.forwarder())
        assert xchange < overlay < copying
