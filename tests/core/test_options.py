"""Tests for build options and the X-Change conversion sets."""

import pytest

from repro.core.options import BuildOptions, MetadataModel, OptionsError
from repro.core.xchange import (
    fastclick_conversions,
    make_fastclick_xchange,
    minimal_conversions,
    standard_dpdk_conversions,
)


class TestBuildOptions:
    def test_vanilla_is_all_off(self):
        options = BuildOptions.vanilla()
        assert options.metadata_model is MetadataModel.COPYING
        assert not options.devirtualize
        assert not options.static_graph
        assert not options.lto

    def test_packetmill_composition(self):
        options = BuildOptions.packetmill()
        assert options.metadata_model is MetadataModel.XCHANGE
        assert options.devirtualize
        assert options.constant_embedding
        assert options.static_graph
        assert options.lto
        # §4.4 footnote: the combined system does not include reordering.
        assert not options.reorder_metadata

    def test_static_implies_devirtualize(self):
        assert BuildOptions.static().devirtualize

    def test_reorder_requires_lto(self):
        with pytest.raises(OptionsError):
            BuildOptions(reorder_metadata=True, lto=False)

    def test_reorder_requires_copying(self):
        with pytest.raises(OptionsError):
            BuildOptions(
                reorder_metadata=True,
                lto=True,
                metadata_model=MetadataModel.XCHANGE,
            )

    def test_lto_reorder_variant_is_valid(self):
        options = BuildOptions.lto_reorder()
        assert options.reorder_metadata
        assert options.metadata_model is MetadataModel.COPYING

    def test_burst_bounds(self):
        with pytest.raises(OptionsError):
            BuildOptions(burst=0)
        with pytest.raises(OptionsError):
            BuildOptions(burst=1000)

    def test_with_model(self):
        options = BuildOptions.metadata(MetadataModel.OVERLAYING)
        assert options.with_model(MetadataModel.XCHANGE).metadata_model is MetadataModel.XCHANGE

    def test_label(self):
        assert BuildOptions.vanilla().label() == "copying"
        label = BuildOptions.packetmill().label()
        assert "xchange" in label and "static" in label and "lto" in label

    def test_frozen(self):
        with pytest.raises(Exception):
            BuildOptions.vanilla().lto = True


class TestConversionSets:
    def test_standard_targets_mbuf_only(self):
        conversions = standard_dpdk_conversions()
        assert conversions.struct_names() == {"rte_mbuf"}

    def test_fastclick_targets_packet_only(self):
        conversions = fastclick_conversions()
        assert conversions.struct_names() == {"Packet"}

    def test_minimal_has_two_items(self):
        assert len(minimal_conversions().targets) == 2

    def test_function_names(self):
        conversions = fastclick_conversions()
        assert conversions.setter_name("vlan_tci") == "xchg_set_vlan_tci"
        assert conversions.getter_name("length") == "xchg_get_length"

    def test_missing_item_raises(self):
        with pytest.raises(KeyError):
            minimal_conversions().target_of("vlan_tci")

    def test_make_fastclick_xchange(self):
        model = make_fastclick_xchange(meta_buffers=32)
        assert model.meta_buffers == 32
        assert model.conversions.name == "fastclick"
