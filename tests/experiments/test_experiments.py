"""Integration tests for the experiment modules at a tiny scale.

Full-scale reproductions live in ``benchmarks/``; here each experiment is
exercised end-to-end with a minimal grid so the pipeline (run -> check ->
format_table) stays correct.
"""

import pytest

from repro.experiments import fig01, fig06, fig09, table1
from repro.experiments.common import (
    QUICK,
    Row,
    Scale,
    format_rows,
    improvement_pct,
)

TINY = Scale(
    name="tiny",
    warmup_batches=40,
    batches=80,
    frequencies=(1.2, 2.0, 3.0),
    packet_sizes=(64, 512, 1472),
    latency_packets=20_000,
    footprints_mb=(1.0, 8.0, 16.0),
    work_numbers=(0, 20),
)


class TestCommon:
    def test_scales_are_ordered(self):
        from repro.experiments.common import FULL

        assert len(FULL.frequencies) > len(QUICK.frequencies)
        assert FULL.batches > QUICK.batches

    def test_improvement_pct(self):
        assert improvement_pct(100, 150) == pytest.approx(50.0)
        assert improvement_pct(0, 10) == 0.0

    def test_format_rows(self):
        rows = [Row("a", {"x": 1.5, "note": "hi"}), Row("b", {"x": 2.0})]
        table = format_rows(rows, ["x", "note"], header="T")
        assert "T" in table
        assert "1.5" in table and "hi" in table
        assert "-" in table  # missing cell placeholder


class TestTable1:
    def test_run_check_format(self):
        result = table1.run(TINY)
        table1.check(result)
        table = table1.format_table(result)
        assert "Vanilla" in table and "Static Graph" in table
        assert set(result.metrics) == {
            "Vanilla", "Devirtualize", "Constant Embedding", "Static Graph", "All",
        }


class TestFig01:
    def test_run_check_format(self):
        result = fig01.run(TINY)
        fig01.check(result)
        table = fig01.format_table(result)
        assert "PacketMill" in table
        assert len(result.curves["Vanilla"]) == len(fig01.LOAD_FRACTIONS)

    def test_knee_visible(self):
        result = fig01.run(TINY)
        vanilla = result.curves["Vanilla"]
        assert vanilla[-1].p99_us > vanilla[0].p99_us * 3


class TestFig06:
    def test_run_check_format(self):
        result = fig06.run(TINY)
        fig06.check(result)
        table = fig06.format_table(result)
        assert "size_B" in table
        assert result.sizes == [64, 512, 1472]

    def test_gbps_grows_with_size(self):
        result = fig06.run(TINY)
        for name in ("Vanilla", "PacketMill"):
            assert result.gbps[name][-1] > result.gbps[name][0]


class TestFig09:
    def test_run_check_format(self):
        result = fig09.run(TINY)
        fig09.check(result)
        table = fig09.format_table(result)
        assert "kloads/100ms" in table
        # The 20-MB point is always appended for the threshold check.
        assert result.footprints_mb[-1] == 20.0
