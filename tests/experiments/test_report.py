"""Tests for the one-command reproduction report."""

import os

from repro.experiments.report import MODULES, generate
from tests.experiments.test_experiments import TINY


class TestReportGenerator:
    def test_covers_every_table_and_figure(self):
        labels = [label for label, _ in MODULES]
        assert labels == [
            "Table 1", "Figure 1", "Figure 4", "Figure 5", "Figure 6",
            "Figure 7", "Figure 8", "Figure 9", "Figure 10", "Figure 11",
            "QoS congestion", "RSS imbalance",
        ]

    def test_generate_single_section(self, tmp_path):
        out = os.path.join(tmp_path, "report.md")
        logs = []
        text = generate(TINY, out_path=out, only="table1", log=logs.append)
        assert "## Table 1" in text
        assert "checked OK" in text
        assert "Vanilla" in text
        assert os.path.exists(out)
        assert any("wrote" in line for line in logs)

    def test_report_is_markdown_with_code_blocks(self):
        text = generate(TINY, only="table1", log=lambda *_: None)
        assert text.startswith("# PacketMill reproduction report")
        assert text.count("```") % 2 == 0
