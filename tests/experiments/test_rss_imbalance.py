"""Tests for the RSS imbalance + adaptive steering experiment."""

import pytest

from repro.experiments import rss_imbalance
from repro.experiments.common import QUICK
from repro.experiments.rss_imbalance import (
    HEAVY_SKEW,
    ImbalanceResult,
    SteeringPoint,
)


@pytest.fixture(scope="module")
def result():
    return rss_imbalance.run(QUICK)


class TestExperiment:
    def test_claims_hold(self, result):
        rss_imbalance.check(result)

    def test_uniform_is_balanced_zipf_is_not(self, result):
        uniform = result.find("stationary", "static", None)
        heavy = result.find("stationary", "static", HEAVY_SKEW)
        assert uniform.imbalance < heavy.imbalance

    def test_steering_recovers_the_gap(self, result):
        for phase in rss_imbalance.PHASES:
            for variant in ("dynamic", "dispatch"):
                assert result.recovery(phase, variant) >= 0.5

    def test_static_runs_never_touch_steering_machinery(self, result):
        for point in result.points_list:
            if point.variant == "static":
                assert point.reta_moves == 0
                assert point.dispatched == 0

    def test_only_dispatch_variant_sprays(self, result):
        for phase in rss_imbalance.PHASES:
            assert result.find(phase, "dynamic", HEAVY_SKEW).dispatched == 0
            assert result.find(phase, "dispatch", HEAVY_SKEW).dispatched > 0

    def test_books_close_for_every_point(self, result):
        for point in result.points_list:
            delivered = sum(point.per_queue_steered)
            assert delivered + point.rss_dropped == point.offered
            assert sum(point.per_core_tx) == delivered

    def test_table_and_json_render(self, result):
        table = rss_imbalance.format_table(result)
        assert "stationary/static/uniform" in table
        assert "shifting/dispatch/zipf-1.6" in table
        doc = result.to_dict()
        assert doc["name"] == "rss_imbalance"
        assert len(doc["points"]) == len(result.points_list)
        assert doc["params"]["variants"] == list(rss_imbalance.VARIANTS)

    def test_find_unknown_point_raises(self, result):
        with pytest.raises(KeyError):
            result.find("stationary", "static", 9.9)


def _point(phase, variant, skew, gbps, arrivals, drops,
           moves=0, dispatched=0):
    steered = [a - d for a, d in zip(arrivals, drops)]
    return SteeringPoint(
        phase=phase, variant=variant, skew=skew, gbps=gbps,
        per_queue_steered=steered, per_queue_dropped=drops,
        per_core_tx=steered, rss_dropped=sum(drops), offered=sum(arrivals),
        reta_moves=moves, migration_drains=0, dispatched=dispatched)


def _synthetic(**overrides):
    """A grid whose shape satisfies every claim; overrides break one."""
    flat = [0, 0, 0, 0]
    points = {
        "uniform": _point("stationary", "static", None, 40.0,
                          [1000] * 4, flat),
        "static": _point("stationary", "static", HEAVY_SKEW, 30.0,
                         [2500, 500, 500, 500], [2000, 0, 0, 0]),
        "dynamic": _point("stationary", "dynamic", HEAVY_SKEW, 36.0,
                          [1300, 900, 900, 900], [100, 0, 0, 0], moves=5),
        "dispatch": _point("stationary", "dispatch", HEAVY_SKEW, 38.0,
                           [1050, 1000, 950, 1000], flat,
                           moves=3, dispatched=500),
        "shift_static": _point("shifting", "static", HEAVY_SKEW, 31.0,
                               [2200, 600, 600, 600], [1500, 0, 0, 0]),
        "shift_dynamic": _point("shifting", "dynamic", HEAVY_SKEW, 36.0,
                                [1200, 950, 950, 900], [50, 0, 0, 0],
                                moves=4),
        "shift_dispatch": _point("shifting", "dispatch", HEAVY_SKEW, 38.5,
                                 [1010, 1000, 990, 1000], flat,
                                 moves=2, dispatched=400),
    }
    points.update(overrides)
    return ImbalanceResult(list(points.values()), n_packets=4000)


class TestCheckLogic:
    def test_accepts_the_expected_shape(self):
        rss_imbalance.check(_synthetic())

    def test_rejects_weak_recovery(self):
        weak = _point("stationary", "dynamic", HEAVY_SKEW, 31.0,
                      [1300, 900, 900, 900], [100, 0, 0, 0], moves=5)
        with pytest.raises(AssertionError, match="recovered only"):
            rss_imbalance.check(_synthetic(dynamic=weak))

    def test_rejects_steering_that_never_moved(self):
        idle = _point("stationary", "dynamic", HEAVY_SKEW, 36.0,
                      [1300, 900, 900, 900], [100, 0, 0, 0], moves=0)
        with pytest.raises(AssertionError, match="no RETA migrations"):
            rss_imbalance.check(_synthetic(dynamic=idle))

    def test_rejects_unrelieved_imbalance(self):
        skewed = _point("stationary", "dynamic", HEAVY_SKEW, 36.0,
                        [2600, 500, 450, 450], [100, 0, 0, 0], moves=5)
        with pytest.raises(AssertionError, match="imbalance"):
            rss_imbalance.check(_synthetic(dynamic=skewed))

    def test_rejects_cooked_books(self):
        cooked = _point("stationary", "dynamic", HEAVY_SKEW, 36.0,
                        [1300, 900, 900, 900], [100, 0, 0, 0], moves=5)
        cooked.offered += 7
        with pytest.raises(AssertionError):
            rss_imbalance.check(_synthetic(dynamic=cooked))

    def test_smoke_mode_relaxes_only_the_quantitative_floor(self):
        weak = _point("stationary", "dynamic", HEAVY_SKEW, 31.0,
                      [1300, 900, 900, 900], [100, 0, 0, 0], moves=5)
        result = _synthetic(dynamic=weak)
        result.smoke = True
        rss_imbalance.check(result)  # 10% recovery passes in smoke mode
        idle = _point("stationary", "dynamic", HEAVY_SKEW, 31.0,
                      [1300, 900, 900, 900], [100, 0, 0, 0], moves=0)
        result = _synthetic(dynamic=idle)
        result.smoke = True
        with pytest.raises(AssertionError, match="no RETA migrations"):
            rss_imbalance.check(result)
