"""Tests for the RSS elephant-flow imbalance experiment."""

import pytest

from repro.experiments import rss_imbalance
from repro.experiments.common import QUICK


@pytest.fixture(scope="module")
def result():
    return rss_imbalance.run(QUICK)


class TestExperiment:
    def test_claims_hold(self, result):
        rss_imbalance.check(result)

    def test_uniform_is_balanced_zipf_is_not(self, result):
        assert result.imbalance(0) < result.imbalance(len(result.skews) - 1)

    def test_books_close_for_every_skew(self, result):
        for i, offered in enumerate(result.offered):
            forwarded = sum(result.per_core_tx[i])
            delivered = sum(result.per_queue_steered[i])
            dropped = result.rss_dropped[i]
            # The run drained to EOF: everything steered was delivered
            # and forwarded (NAT forwards all), plus counted RSS drops.
            assert delivered + dropped == offered
            assert forwarded == delivered

    def test_table_and_json_render(self, result):
        table = rss_imbalance.format_table(result)
        assert "uniform" in table and "zipf-1.6" in table
        doc = result.to_dict()
        assert doc["name"] == "rss_imbalance"
        assert len(doc["points"]) == len(rss_imbalance.SKEWS)


class TestCheckLogic:
    def _synthetic(self, gbps, steered, dropped_per_q):
        n = len(gbps)
        return rss_imbalance.ImbalanceResult(
            skews=list(rss_imbalance.SKEWS)[:n],
            gbps=gbps,
            per_queue_steered=steered,
            per_queue_dropped=dropped_per_q,
            per_core_tx=steered,
            rss_dropped=[sum(d) for d in dropped_per_q],
            offered=[sum(s) + sum(d) for s, d in zip(steered, dropped_per_q)],
        )

    def test_rejects_no_throughput_loss(self):
        result = self._synthetic(
            [40.0, 40.0, 40.0],
            [[1000] * 4, [1000] * 4, [2500, 500, 500, 500]],
            [[0] * 4, [0] * 4, [500, 0, 0, 0]])
        with pytest.raises(AssertionError):
            rss_imbalance.check(result)

    def test_accepts_the_expected_shape(self):
        result = self._synthetic(
            [40.0, 36.0, 30.0],
            [[1000] * 4, [1400, 900, 900, 800], [2000, 700, 700, 600]],
            [[0] * 4, [100, 0, 0, 0], [2000, 0, 0, 0]])
        rss_imbalance.check(result)
