"""Tests for the per-element profiler."""

import pytest

from repro.core import nfs
from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.hw.params import MachineParams
from repro.net.trace import FixedSizeTraceGenerator, TraceSpec
from repro.perf.profiler import ElementProfiler


def build(config, options=None, s_mb=None):
    trace = lambda port, core: FixedSizeTraceGenerator(512, TraceSpec(seed=6))
    return PacketMill(config, options or BuildOptions.vanilla(),
                      params=MachineParams(), trace=trace).build()


class TestProfiler:
    def test_attribution_sums_to_total(self):
        binary = build(nfs.router())
        report = ElementProfiler(binary).profile(batches=60, warmup_batches=30)
        attributed = sum(p.ns for p in report.elements.values())
        assert attributed == pytest.approx(report.total_ns, rel=0.02)

    def test_every_traversed_element_charged(self):
        binary = build(nfs.router())
        report = ElementProfiler(binary).profile(batches=40, warmup_batches=20)
        for name in ("c", "rt", "dec"):
            assert report.elements[name].packets > 0
            assert report.elements[name].ns > 0

    def test_pmd_paths_present(self):
        binary = build(nfs.forwarder())
        report = ElementProfiler(binary).profile(batches=40, warmup_batches=20)
        assert report.elements["<pmd-rx>"].ns > 0
        assert report.elements["<pmd-tx>"].ns > 0

    def test_untraversed_elements_zero(self):
        binary = build(nfs.router())
        report = ElementProfiler(binary).profile(batches=40, warmup_batches=20)
        # No ARP traffic in the trace: the responder never runs.
        arp = binary.graph.by_class("ARPResponder")[0].name
        assert report.elements[arp].packets == 0

    def test_finds_the_hot_element(self):
        """A memory-heavy WorkPackage must dominate the profile."""
        binary = build(nfs.workpackage_forwarder(16, 5, 20))
        report = ElementProfiler(binary).profile(batches=60, warmup_batches=30)
        hot = report.hottest()
        assert hot.class_name in ("WorkPackage", "MlxPmd")
        wp = next(p for p in report.elements.values()
                  if p.class_name == "WorkPackage")
        assert report.share(wp.name) > 0.25

    def test_profiling_restores_hooks(self):
        binary = build(nfs.forwarder())
        driver_fn = binary.driver._charge_element
        ElementProfiler(binary).profile(batches=10, warmup_batches=5)
        assert binary.driver._charge_element == driver_fn
        # The binary still measures normally afterwards.
        run = binary.measure(batches=20, warmup_batches=10)
        assert run.packets == 640

    def test_format_table(self):
        binary = build(nfs.router())
        report = ElementProfiler(binary).profile(batches=30, warmup_batches=15)
        table = report.format_table()
        assert "ns/pkt" in table
        assert "rt" in table
        assert "total:" in table
