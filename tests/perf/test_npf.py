"""Tests for the NPF-style experiment orchestration."""

import os

import pytest

from repro.perf.npf import NpfRunner, ResultSet, TestResult, Variable


def fake_runner(seed, freq, size=64):
    # Deterministic in the point, jittered by seed (like real runs).
    base = freq * 10 + size / 100
    return {"gbps": base + (seed % 3) * 0.1, "mpps": base / 8}


class TestVariable:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Variable("freq", [])


class TestNpfRunner:
    def test_grid_coverage(self):
        runner = NpfRunner(repeats=2)
        results = runner.run(
            "demo",
            [Variable("freq", [1.2, 2.4]), Variable("size", [64, 1024])],
            fake_runner,
        )
        assert len(results.results) == 4
        points = {(r.point["freq"], r.point["size"]) for r in results.results}
        assert points == {(1.2, 64), (1.2, 1024), (2.4, 64), (2.4, 1024)}

    def test_repeats_collected(self):
        runner = NpfRunner(repeats=3)
        results = runner.run("demo", [Variable("freq", [2.0])], fake_runner)
        assert len(results.results[0].metrics["gbps"]) == 3

    def test_median_across_repeats(self):
        result = TestResult(point={}, metrics={"x": [1.0, 5.0, 3.0]})
        assert result.median("x") == 3.0

    def test_spread(self):
        result = TestResult(point={}, metrics={"x": [9.0, 10.0, 11.0]})
        assert result.spread("x") == pytest.approx(0.1)

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            NpfRunner(repeats=0)

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            NpfRunner().run("demo", [Variable("freq", [])], fake_runner)

    def test_seeds_vary_per_repeat(self):
        seen = []

        def spy(seed, freq):
            seen.append(seed)
            return {"m": 1.0}

        NpfRunner(repeats=3).run("demo", [Variable("freq", [1.0])], spy)
        assert len(set(seen)) == 3


class TestResultSet:
    def _results(self):
        return NpfRunner(repeats=2).run(
            "demo",
            [Variable("freq", [1.2, 2.4]), Variable("size", [64])],
            fake_runner,
        )

    def test_rows(self):
        rows = self._results().rows()
        assert rows[0]["freq"] == 1.2
        assert "gbps" in rows[0]

    def test_column(self):
        column = self._results().column("gbps")
        assert len(column) == 2
        assert column[1] > column[0]

    def test_filtered(self):
        hits = self._results().filtered(freq=2.4)
        assert len(hits) == 1
        assert hits[0].point["size"] == 64

    def test_csv_roundtrip(self, tmp_path):
        path = os.path.join(tmp_path, "out.csv")
        self._results().to_csv(path)
        with open(path) as handle:
            lines = handle.read().strip().splitlines()
        assert lines[0] == "freq,size,gbps,mpps"
        assert len(lines) == 3

    def test_format(self):
        text = self._results().format()
        assert "demo" in text
        assert "gbps" in text


class TestWithRealBinaries:
    def test_orchestrates_simulated_measurements(self):
        """End to end: an NPF grid over real builds."""
        from repro.core import nfs
        from repro.core.options import BuildOptions
        from repro.core.packetmill import PacketMill
        from repro.hw.params import MachineParams
        from repro.net.trace import FixedSizeTraceGenerator, TraceSpec
        from repro.perf.runner import measure_throughput

        def run_point(seed, variant):
            options = (
                BuildOptions.packetmill() if variant == "packetmill"
                else BuildOptions.vanilla()
            )
            trace = lambda port, core: FixedSizeTraceGenerator(256, TraceSpec(seed=seed))
            binary = PacketMill(
                nfs.forwarder(), options,
                params=MachineParams(freq_ghz=2.3), trace=trace, seed=seed,
            ).build()
            point = measure_throughput(binary, batches=40, warmup_batches=20)
            return {"mpps": point.mpps}

        results = NpfRunner(repeats=2).run(
            "variants", [Variable("variant", ["vanilla", "packetmill"])], run_point
        )
        vanilla = results.filtered(variant="vanilla")[0].median("mpps")
        packetmill = results.filtered(variant="packetmill")[0].median("mpps")
        assert packetmill > vanilla
        # Repeats agree within a few percent (measurement stability).
        assert results.filtered(variant="vanilla")[0].spread("mpps") < 0.05
