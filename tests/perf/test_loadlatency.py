"""Tests for the open-loop load/latency simulator."""

import pytest

from repro.perf.loadlatency import LoadLatencySimulator


def sim(service_ns=100.0, **kwargs):
    return LoadLatencySimulator(service_ns, **kwargs)


class TestCapacity:
    def test_capacity_close_to_service_rate(self):
        s = sim(service_ns=100.0)
        assert s.capacity_pps() == pytest.approx(1e9 / 100, rel=0.05)

    def test_poll_overhead_reduces_capacity(self):
        light = sim(poll_overhead_ns=0.0)
        heavy = sim(poll_overhead_ns=320.0)
        assert heavy.capacity_pps() < light.capacity_pps()

    def test_rejects_nonpositive_service(self):
        with pytest.raises(ValueError):
            LoadLatencySimulator(0.0)


class TestLatencyBehaviour:
    def test_light_load_latency_near_floor(self):
        s = sim(service_ns=100.0, base_latency_us=6.0)
        res = s.run(offered_pps=1e6, n_packets=20_000)  # 10% load
        assert res.drop_rate == 0.0
        assert res.p50_us < 10.0
        assert res.p99_us < 25.0

    def test_latency_grows_with_load(self):
        s = sim(service_ns=100.0)
        light = s.run(2e6, n_packets=20_000)
        heavy = s.run(9e6, n_packets=20_000)
        assert heavy.p99_us > light.p99_us
        assert heavy.mean_us > light.mean_us

    def test_saturation_pins_latency_at_ring_depth(self):
        s = sim(service_ns=100.0, ring_size=256, base_latency_us=0.0)
        res = s.run(offered_pps=2e7, n_packets=40_000)  # 2x capacity
        assert res.saturated
        assert res.drop_rate > 0.3
        # Latency ~ ring_size * service = 25.6 us once the ring is full.
        assert res.p50_us == pytest.approx(25.6, rel=0.3)

    def test_achieved_caps_at_capacity(self):
        s = sim(service_ns=100.0)
        res = s.run(offered_pps=3e7, n_packets=40_000)
        assert res.achieved_pps <= s.capacity_pps() * 1.05

    def test_no_drops_below_capacity(self):
        s = sim(service_ns=100.0, ring_size=1024)
        res = s.run(offered_pps=s.capacity_pps() * 0.7, n_packets=40_000)
        assert res.drop_rate < 0.001
        assert not res.saturated

    def test_p99_at_least_p50(self):
        s = sim()
        res = s.run(offered_pps=5e6, n_packets=20_000)
        assert res.p99_us >= res.p50_us

    def test_deterministic_for_seed(self):
        a = sim(seed=5).run(4e6, n_packets=10_000)
        b = sim(seed=5).run(4e6, n_packets=10_000)
        assert a.p99_us == b.p99_us

    def test_base_latency_floor_added(self):
        without = sim(base_latency_us=0.0).run(1e6, n_packets=5_000)
        with_floor = sim(base_latency_us=6.0, seed=1).run(1e6, n_packets=5_000)
        assert with_floor.p50_us == pytest.approx(without.p50_us + 6.0, abs=0.5)

    def test_rejects_nonpositive_load(self):
        with pytest.raises(ValueError):
            sim().run(0.0)

    def test_sweep_returns_per_load_results(self):
        s = sim()
        results = s.sweep([1e6, 2e6, 3e6], n_packets=5_000)
        assert [r.offered_pps for r in results] == [1e6, 2e6, 3e6]

    def test_knee_shape(self):
        """The paper's latency-vs-load knee: flat, then a sharp rise."""
        s = sim(service_ns=100.0, ring_size=1024)
        cap = s.capacity_pps()
        loads = [cap * f for f in (0.3, 0.6, 0.9, 1.1)]
        p99 = [s.run(load, n_packets=30_000).p99_us for load in loads]
        # Flat region: 30% -> 60% grows little; knee: 90% -> 110% explodes.
        assert p99[1] < p99[0] * 3
        assert p99[3] > p99[1] * 5
