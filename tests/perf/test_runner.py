"""Tests for throughput measurement and physical rate ceilings."""

import pytest

from repro.core import nfs
from repro.core.options import BuildOptions, MetadataModel
from repro.core.packetmill import PacketMill
from repro.hw.params import MachineParams
from repro.net.trace import FixedSizeTraceGenerator, TraceSpec
from repro.perf.runner import _apply_ceilings, measure_multicore, measure_throughput


def build(config=None, options=None, freq=2.3, frame=1024, seed=0):
    params = MachineParams(freq_ghz=freq)
    trace = lambda port, core: FixedSizeTraceGenerator(frame, TraceSpec(seed=seed + port))
    return PacketMill(config or nfs.forwarder(), options or BuildOptions.vanilla(),
                      params=params, trace=trace, seed=seed)


class TestCeilings:
    def test_cpu_bound_when_slow(self):
        pps, bound = _apply_ceilings(1e6, 1024, MachineParams(), n_ports=1)
        assert bound == "cpu"
        assert pps == 1e6

    def test_link_bound_for_fast_cpu_large_frames(self):
        params = MachineParams(pcie_gbps=1000.0, nic_queue_pps_limit=1e9)
        pps, bound = _apply_ceilings(1e9, 1500, params, n_ports=1)
        assert bound == "link"
        assert pps == pytest.approx(params.line_rate_pps(1500))

    def test_queue_bound_for_fast_cpu_small_frames(self):
        pps, bound = _apply_ceilings(1e9, 64, MachineParams(), n_ports=1)
        assert bound == "queue"

    def test_ports_scale_ceilings(self):
        params = MachineParams()
        one, _ = _apply_ceilings(1e9, 64, params, n_ports=1)
        two, _ = _apply_ceilings(1e9, 64, params, n_ports=2)
        assert two == pytest.approx(2 * one)


class TestMeasureThroughput:
    def test_basic_measurement(self):
        point = measure_throughput(build().build(), batches=60, warmup_batches=30)
        assert point.pps > 1e6
        assert point.gbps == pytest.approx(point.pps * 1024 * 8 / 1e9, rel=1e-6)
        assert point.mean_frame_len == 1024
        assert point.bound_by in ("cpu", "queue", "pcie", "link")

    def test_throughput_scales_with_frequency(self):
        slow = measure_throughput(build(freq=1.2).build(), batches=60, warmup_batches=30)
        fast = measure_throughput(build(freq=2.4).build(), batches=60, warmup_batches=30)
        assert fast.cpu_pps > slow.cpu_pps * 1.5

    def test_counter_per_window(self):
        point = measure_throughput(build().build(), batches=60, warmup_batches=30)
        per_window = point.counter_per_window("llc_loads")
        expected = (
            point.run.counters["llc_loads"] / point.run.packets * point.pps * 0.1
        )
        assert per_window == pytest.approx(expected)

    def test_xchange_caps_at_physical_limit_when_fast(self):
        binary = build(options=BuildOptions.metadata(MetadataModel.XCHANGE), freq=3.0).build()
        point = measure_throughput(binary, batches=60, warmup_batches=30)
        assert point.bound_by != "cpu"
        assert point.pps < point.cpu_pps


class TestMeasureMulticore:
    def test_two_cores_roughly_double(self):
        mill = build(config=nfs.nat_router(), frame=1024)
        one = measure_multicore(mill.build_multicore(1), batches=40, warmup_batches=20)
        mill2 = build(config=nfs.nat_router(), frame=1024)
        two = measure_multicore(mill2.build_multicore(2), batches=40, warmup_batches=20)
        assert two.cpu_pps > one.cpu_pps * 1.7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            measure_multicore([])
