"""Tests for the ASCII chart renderers."""

import pytest

from repro.perf.ascii import bar_chart, line_chart


class TestLineChart:
    def _one_series(self):
        return {"up": ([1.0, 2.0, 3.0], [10.0, 20.0, 30.0])}

    def test_renders_title_and_legend(self):
        chart = line_chart(self._one_series(), title="T", x_label="GHz",
                           y_label="Gbps")
        assert chart.startswith("T")
        assert "x up" in chart
        assert "GHz" in chart and "Gbps" in chart

    def test_axis_labels_show_extremes(self):
        chart = line_chart(self._one_series())
        assert "30" in chart and "10" in chart
        assert chart.rstrip().count("\n") > 10

    def test_monotone_series_renders_diagonal(self):
        chart = line_chart(self._one_series(), width=30, height=10)
        rows = [line.split("|", 1)[1] for line in chart.splitlines() if "|" in line]
        cols = [row.index("x") for row in rows if "x" in row]
        # Higher rows (earlier lines) hold higher y -> larger x positions.
        assert cols == sorted(cols, reverse=True)

    def test_multiple_series_get_distinct_markers(self):
        chart = line_chart({
            "a": ([0, 1], [0, 1]),
            "b": ([0, 1], [1, 0]),
        })
        assert "x a" in chart and "o b" in chart

    def test_flat_series_ok(self):
        chart = line_chart({"flat": ([0, 1, 2], [5.0, 5.0, 5.0])})
        assert "flat" in chart

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"bad": ([1, 2], [1])})


class TestBarChart:
    def test_bars_scale_with_values(self):
        chart = bar_chart(["a", "b"], [1.0, 2.0], width=20)
        line_a, line_b = chart.splitlines()
        assert line_b.count("#") == 2 * line_a.count("#")

    def test_values_annotated(self):
        chart = bar_chart(["x"], [3.5], unit=" Mpps")
        assert "3.50 Mpps" in chart

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_rejects_nonpositive_peak(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [0.0])
