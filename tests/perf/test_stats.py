"""Tests for statistics helpers (percentiles and the figure fits)."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.perf.stats import linear_fit, mean, percentile, quadratic_fit


class TestPercentile:
    def test_median_of_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 25) == 2.5

    def test_extremes(self):
        data = list(range(100))
        assert percentile(data, 0) == 0
        assert percentile(data, 100) == 99

    def test_single_sample(self):
        assert percentile([7.0], 99) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_unsorted_input(self):
        data = [5, 1, 4, 2, 3]
        assert percentile(data, 50) == 3

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_bounded_by_min_max_property(self, data):
        for q in (0, 25, 50, 75, 99, 100):
            value = percentile(data, q)
            assert min(data) <= value <= max(data)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=50))
    def test_monotone_in_q_property(self, data):
        values = [percentile(data, q) for q in (10, 50, 90, 99)]
        assert all(a <= b for a, b in zip(values, values[1:]))


class TestMean:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestLinearFit:
    def test_exact_line(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [2 + 5 * x for x in xs]
        a, b, r2 = linear_fit(xs, ys)
        assert a == pytest.approx(2.0)
        assert b == pytest.approx(5.0)
        assert r2 == pytest.approx(1.0)

    def test_noisy_line(self):
        rng = random.Random(1)
        xs = [x / 10 for x in range(1, 40)]
        ys = [3 + 2 * x + rng.gauss(0, 0.01) for x in xs]
        a, b, r2 = linear_fit(xs, ys)
        assert b == pytest.approx(2.0, abs=0.05)
        assert r2 > 0.99

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1])

    def test_degenerate_x(self):
        with pytest.raises(ValueError):
            linear_fit([2, 2, 2], [1, 2, 3])

    @given(
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-100, max_value=100),
    )
    def test_recovers_coefficients_property(self, a, b):
        xs = [0.0, 1.0, 2.0, 3.0]
        ys = [a + b * x for x in xs]
        got_a, got_b, r2 = linear_fit(xs, ys)
        assert math.isclose(got_a, a, abs_tol=1e-6 + abs(a) * 1e-9)
        assert math.isclose(got_b, b, abs_tol=1e-6 + abs(b) * 1e-9)


class TestQuadraticFit:
    def test_exact_parabola(self):
        xs = [1.0, 1.5, 2.0, 2.5, 3.0]
        ys = [521 - 212 * x + 39.5 * x * x for x in xs]  # Fig 4's All(f)
        a, b, c, r2 = quadratic_fit(xs, ys)
        assert a == pytest.approx(521, rel=1e-6)
        assert b == pytest.approx(-212, rel=1e-6)
        assert c == pytest.approx(39.5, rel=1e-6)
        assert r2 == pytest.approx(1.0)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            quadratic_fit([1, 2], [1, 2])

    def test_degenerate(self):
        with pytest.raises(ValueError):
            quadratic_fit([1, 1, 1], [1, 2, 3])

    def test_fits_line_with_zero_curvature(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [1 + 2 * x for x in xs]
        a, b, c, r2 = quadratic_fit(xs, ys)
        assert c == pytest.approx(0.0, abs=1e-9)
        assert r2 == pytest.approx(1.0)
