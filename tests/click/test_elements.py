"""Functional tests for the element library."""

import pytest

from repro.click.element import ElementConfigError, ElementRegistry
from repro.click.config.ast import Declaration
from repro.click.elements import (
    ARPResponder,
    CheckIPHeader,
    Classifier,
    Counter,
    DecIPTTL,
    Discard,
    EtherMirror,
    EtherRewrite,
    IPClassifier,
    Paint,
    Strip,
    VLANDecap,
    VLANEncap,
    WorkPackage,
)
from repro.net.addresses import IPv4Address, MacAddress
from repro.net.flows import PROTO_ICMP, PROTO_TCP, PROTO_UDP, FlowSpec
from repro.net.packet import ANNO_PAINT, ANNO_VLAN_TCI, Packet
from repro.net.protocols import ETHERTYPE_VLAN, ArpHeader, EtherHeader
from repro.net.trace import build_frame


def make_element(cls, config=""):
    decl = Declaration("t", cls.class_name, config)
    return cls("t", decl)


def tcp_packet(frame_len=128, ttl=64, proto=PROTO_TCP):
    flow = FlowSpec(
        src_ip=IPv4Address("10.0.0.1"),
        dst_ip=IPv4Address("192.168.0.1"),
        proto=proto,
        src_port=1234,
        dst_port=80,
    )
    return Packet(build_frame(flow, frame_len, ttl=ttl))


class TestRegistry:
    def test_known_classes_registered(self):
        known = ElementRegistry.known_classes()
        for name in ("EtherMirror", "CheckIPHeader", "RadixIPLookup", "IPRewriter",
                     "WorkPackage", "FromDPDKDevice", "ToDPDKDevice"):
            assert name in known

    def test_unknown_class(self):
        with pytest.raises(ElementConfigError):
            ElementRegistry.create(Declaration("x", "Teleporter"))


class TestEtherElements:
    def test_mirror_swaps(self):
        pkt = tcp_packet()
        src, dst = pkt.ether().src, pkt.ether().dst
        element = make_element(EtherMirror)
        assert element.process(pkt) == 0
        assert pkt.ether().src == dst
        assert pkt.ether().dst == src

    def test_rewrite(self):
        element = make_element(EtherRewrite, "SRC 02:aa:00:00:00:01, DST 02:bb:00:00:00:02")
        pkt = tcp_packet()
        element.process(pkt)
        assert pkt.ether().src == MacAddress("02:aa:00:00:00:01")
        assert pkt.ether().dst == MacAddress("02:bb:00:00:00:02")

    def test_rewrite_requires_macs(self):
        with pytest.raises(ElementConfigError):
            make_element(EtherRewrite)


class TestClassifier:
    def test_dispatch_by_ethertype(self):
        element = make_element(Classifier, "12/0800, 12/0806, -")
        assert element.n_outputs == 3
        assert element.process(tcp_packet()) == 0  # IPv4

    def test_default_pattern(self):
        element = make_element(Classifier, "12/9999, -")
        assert element.process(tcp_packet()) == 1

    def test_no_match_drops(self):
        element = make_element(Classifier, "12/9999")
        assert element.process(tcp_packet()) is None

    def test_multi_term_pattern(self):
        element = make_element(Classifier, "12/0800 23/06, -")
        assert element.process(tcp_packet()) == 0
        assert element.process(tcp_packet(proto=PROTO_UDP)) == 1

    def test_bad_pattern(self):
        with pytest.raises(ElementConfigError):
            make_element(Classifier, "nonsense")

    def test_needs_patterns(self):
        with pytest.raises(ElementConfigError):
            make_element(Classifier)


class TestIPClassifier:
    def _marked(self, proto):
        pkt = tcp_packet(proto=proto)
        make_element(CheckIPHeader, "14").process(pkt)
        return pkt

    def test_protocol_dispatch(self):
        element = make_element(IPClassifier, "tcp, udp, icmp, -")
        assert element.process(self._marked(PROTO_TCP)) == 0
        assert element.process(self._marked(PROTO_UDP)) == 1
        assert element.process(self._marked(PROTO_ICMP)) == 2

    def test_rejects_unknown_pattern(self):
        with pytest.raises(ElementConfigError):
            make_element(IPClassifier, "sctp")


class TestCheckIPHeader:
    def test_valid_packet_passes_and_marks(self):
        element = make_element(CheckIPHeader, "14")
        pkt = tcp_packet()
        assert element.process(pkt) == 0
        assert pkt.network_header_offset == 14
        assert pkt.transport_header_offset == 34
        assert element.bad == 0

    def test_corrupt_checksum_goes_to_port1(self):
        element = make_element(CheckIPHeader, "14")
        pkt = tcp_packet()
        pkt.data()[24] ^= 0xFF  # corrupt the IP checksum
        assert element.process(pkt) == 1
        assert element.bad == 1

    def test_truncated_packet(self):
        element = make_element(CheckIPHeader, "14")
        pkt = Packet(b"\x00" * 20)
        assert element.process(pkt) == 1


class TestDecIPTTL:
    def _ip_marked(self, ttl):
        pkt = tcp_packet(ttl=ttl)
        make_element(CheckIPHeader, "14").process(pkt)
        return pkt

    def test_decrements_and_fixes_checksum(self):
        element = make_element(DecIPTTL)
        pkt = self._ip_marked(ttl=64)
        assert element.process(pkt) == 0
        assert pkt.ip().ttl == 63
        assert pkt.ip().verify()

    def test_expired_ttl(self):
        element = make_element(DecIPTTL)
        assert element.process(self._ip_marked(ttl=1)) == 1
        assert element.expired == 1


class TestVlan:
    def _marked(self):
        pkt = tcp_packet()
        make_element(CheckIPHeader, "14").process(pkt)
        return pkt

    def test_encap_inserts_tag(self):
        element = make_element(VLANEncap, "VLAN_TCI 100")
        pkt = self._marked()
        original_len = len(pkt)
        element.process(pkt)
        assert len(pkt) == original_len + 4
        assert pkt.ether().ethertype == ETHERTYPE_VLAN
        assert pkt.vlan().vlan_id == 100

    def test_encap_preserves_macs_and_payload(self):
        element = make_element(VLANEncap, "VLAN_TCI 7")
        pkt = self._marked()
        src, dst = pkt.ether().src, pkt.ether().dst
        ip_before = bytes(pkt.data()[14:34])
        element.process(pkt)
        assert pkt.ether().src == src and pkt.ether().dst == dst
        assert bytes(pkt.data()[18:38]) == ip_before

    def test_encap_from_annotation(self):
        element = make_element(VLANEncap, "VLAN_TCI 0")
        pkt = self._marked()
        pkt.set_anno_u16(ANNO_VLAN_TCI, 42)
        element.process(pkt)
        assert pkt.vlan().vlan_id == 42

    def test_decap_roundtrip(self):
        pkt = self._marked()
        original = pkt.data_bytes()
        make_element(VLANEncap, "VLAN_TCI 9").process(pkt)
        decap = make_element(VLANDecap)
        decap.process(pkt)
        assert pkt.data_bytes() == original
        assert pkt.anno_u16(ANNO_VLAN_TCI) == 9

    def test_decap_ignores_untagged(self):
        pkt = self._marked()
        original = pkt.data_bytes()
        make_element(VLANDecap).process(pkt)
        assert pkt.data_bytes() == original


class TestMiscElements:
    def test_discard(self):
        element = make_element(Discard)
        assert element.process(tcp_packet()) is None
        assert element.discarded == 1

    def test_paint(self):
        element = make_element(Paint, "5")
        pkt = tcp_packet()
        element.process(pkt)
        assert pkt.anno_u8(ANNO_PAINT) == 5

    def test_counter(self):
        element = make_element(Counter)
        element.process(tcp_packet(128))
        element.process(tcp_packet(256))
        assert element.packets == 2
        assert element.bytes == 384

    def test_strip(self):
        element = make_element(Strip, "14")
        pkt = tcp_packet()
        ip_first = pkt.data_bytes()[14]
        element.process(pkt)
        assert pkt.data_bytes()[0] == ip_first

    def test_workpackage_prng_runs(self):
        element = make_element(WorkPackage, "S 1, N 2, W 4")
        element.process(tcp_packet())
        assert element.processed == 1
        assert element.footprint_bytes == 1024 * 1024

    def test_workpackage_program_reflects_params(self):
        element = make_element(WorkPackage, "S 2, N 3, W 5")
        program = element.ir_program()
        from repro.compiler.ir import RandomAccess

        random_ops = [op for op in program.ops if isinstance(op, RandomAccess)]
        assert random_ops[0].count == 3
        assert random_ops[0].footprint == 2 * 1024 * 1024


class TestARPResponder:
    def _request(self):
        ether = EtherHeader.build(
            MacAddress.broadcast(), MacAddress("02:00:00:00:00:01"), 0x0806
        )
        arp = ArpHeader.build(
            ArpHeader.OP_REQUEST,
            MacAddress("02:00:00:00:00:01"),
            IPv4Address("10.0.0.9"),
            MacAddress.zero(),
            IPv4Address("192.168.1.1"),
        )
        pkt = Packet(ether + arp + bytes(18))
        pkt.mac_header_offset = 0
        return pkt

    def test_replies_to_request(self):
        element = make_element(ARPResponder, "192.168.1.1 02:00:00:00:00:02")
        pkt = self._request()
        assert element.process(pkt) == 0
        arp = pkt.arp()
        assert arp.op == ArpHeader.OP_REPLY
        assert arp.sender_mac == MacAddress("02:00:00:00:00:02")
        assert arp.target_ip == IPv4Address("10.0.0.9")
        assert pkt.ether().dst == MacAddress("02:00:00:00:00:01")

    def test_ignores_other_targets(self):
        element = make_element(ARPResponder, "192.168.9.9 02:00:00:00:00:02")
        assert element.process(self._request()) is None
