"""Property-based invariants of the driver and the config parser."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.click.config import parse_config
from repro.core.options import BuildOptions, MetadataModel
from repro.core.packetmill import PacketMill
from repro.hw.params import MachineParams
from repro.net.trace import FixedSizeTraceGenerator, TraceSpec

# A tiny config family: a classifier fans out into drop/forward legs.
CONFIG_TEMPLATE = """
input :: FromDPDKDevice(PORT 0, BURST %(burst)d);
output :: ToDPDKDevice(PORT 0, BURST %(burst)d);
c :: Classifier(%(patterns)s);
input -> c;
%(wiring)s
"""


def build_config(n_forward, n_drop, burst):
    """n_forward legs go to output, n_drop legs are left unconnected."""
    patterns = ["12/0800"] * (n_forward + n_drop - 1) + ["-"]
    wiring = []
    for i in range(n_forward):
        wiring.append("c[%d] -> EtherMirror -> output;" % i)
    # Remaining ports unwired -> dropped by the driver.
    return CONFIG_TEMPLATE % {
        "burst": burst,
        "patterns": ", ".join(patterns),
        "wiring": "\n".join(wiring),
    }


class TestDriverConservation:
    @settings(max_examples=10, deadline=None)
    @given(
        n_forward=st.integers(min_value=1, max_value=3),
        n_drop=st.integers(min_value=0, max_value=2),
        burst=st.sampled_from([8, 32]),
        batches=st.integers(min_value=3, max_value=12),
    )
    def test_every_packet_is_forwarded_or_dropped(self, n_forward, n_drop,
                                                  burst, batches):
        """rx == tx + drops, and no mempool leak, for any graph shape.

        The classifier sends all IPv4 to port 0, so with n_forward >= 1
        everything forwards; drop legs exercise the kill path when the
        first pattern port is unwired.
        """
        config = build_config(n_forward, n_drop, burst)
        trace = lambda port, core: FixedSizeTraceGenerator(128, TraceSpec(seed=1))
        params = MachineParams(rx_ring_size=256, tx_ring_size=256)
        binary = PacketMill(config, BuildOptions.vanilla(), params=params,
                            trace=trace).build()
        stats = binary.driver.run_batches(batches)
        assert stats.rx_packets == stats.tx_packets + stats.drops
        pool = binary.model.mempool
        outstanding = pool.gets - pool.puts
        in_flight = (
            binary.pmds[0].nic.rx_ring.count + binary.pmds[0].nic.tx_ring.count
        )
        assert outstanding == in_flight

    @settings(max_examples=6, deadline=None)
    @given(model=st.sampled_from(list(MetadataModel)))
    def test_conservation_across_models(self, model):
        config = build_config(1, 1, 32)
        trace = lambda port, core: FixedSizeTraceGenerator(128, TraceSpec(seed=2))
        options = BuildOptions(metadata_model=model,
                               lto=model is not MetadataModel.COPYING)
        binary = PacketMill(config, options, params=MachineParams(),
                            trace=trace).build()
        stats = binary.driver.run_batches(8)
        assert stats.rx_packets == stats.tx_packets + stats.drops
        assert stats.rx_packets == 8 * 32


class TestParserProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        names=st.lists(
            st.text(alphabet="abcdefgh", min_size=1, max_size=6),
            min_size=2, max_size=6, unique=True,
        )
    )
    def test_linear_chain_roundtrip(self, names):
        """Any linear chain of declared Counters parses to n-1 connections."""
        decls = "\n".join("%s :: Counter;" % n for n in names)
        chain = " -> ".join(names) + ";"
        ast = parse_config(decls + "\n" + chain)
        assert len(ast.connections) == len(names) - 1
        for i, conn in enumerate(ast.connections):
            assert conn.src == names[i]
            assert conn.dst == names[i + 1]

    @settings(max_examples=30, deadline=None)
    @given(
        ports=st.lists(st.integers(min_value=0, max_value=9),
                       min_size=1, max_size=5, unique=True)
    )
    def test_port_fanout_roundtrip(self, ports):
        lines = ["c :: Counter;"]
        for port in ports:
            lines.append("d%d :: Counter;" % port)
            lines.append("c[%d] -> d%d;" % (port, port))
        ast = parse_config("\n".join(lines))
        assert {c.src_port for c in ast.connections} == set(ports)
