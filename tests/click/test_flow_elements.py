"""Tests for Queue/PaintSwitch/Print/SetIPChecksum and queue draining."""

import pytest

from repro.click.config.ast import Declaration
from repro.click.elements import PaintSwitch, Print, Queue, SetIPChecksum
from repro.click.elements.ip import CheckIPHeader
from repro.core.options import BuildOptions, MetadataModel
from repro.core.packetmill import PacketMill
from repro.hw.params import MachineParams
from repro.net.addresses import IPv4Address
from repro.net.flows import PROTO_TCP, FlowSpec
from repro.net.packet import ANNO_PAINT, Packet
from repro.net.trace import FixedSizeTraceGenerator, TraceSpec, build_frame


def make(cls, config=""):
    return cls("t", Declaration("t", cls.class_name, config))


def packet():
    flow = FlowSpec(IPv4Address("10.0.0.1"), IPv4Address("192.168.0.1"),
                    PROTO_TCP, 1234, 80)
    pkt = Packet(build_frame(flow, 128))
    make(CheckIPHeader, "14").process(pkt)
    return pkt


class TestQueueElement:
    def test_holds_packets(self):
        queue = make(Queue, "CAPACITY 4")
        assert queue.process(packet()) == -1
        assert queue.occupancy == 1

    def test_fifo_drain(self):
        queue = make(Queue)
        first, second = packet(), packet()
        queue.process(first)
        queue.process(second)
        drained = queue.drain(10)
        assert drained == [first, second]
        assert queue.occupancy == 0

    def test_drain_respects_limit(self):
        queue = make(Queue)
        for _ in range(5):
            queue.process(packet())
        assert len(queue.drain(3)) == 3
        assert queue.occupancy == 2

    def test_drop_tail_on_overflow(self):
        queue = make(Queue, "CAPACITY 2")
        queue.process(packet())
        queue.process(packet())
        assert queue.process(packet()) is None
        assert queue.overflows == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            make(Queue, "CAPACITY 0")

    def test_marks_buffering(self):
        assert make(Queue).buffers_packets


class TestPaintSwitch:
    def test_routes_by_color(self):
        switch = make(PaintSwitch, "N 3")
        pkt = packet()
        pkt.set_anno_u8(ANNO_PAINT, 2)
        assert switch.process(pkt) == 2

    def test_out_of_range_drops(self):
        switch = make(PaintSwitch, "N 2")
        pkt = packet()
        pkt.set_anno_u8(ANNO_PAINT, 5)
        assert switch.process(pkt) is None


class TestPrint:
    def test_logs_lines(self):
        element = make(Print, "tap")
        element.process(packet())
        assert element.lines == ["tap: 128 bytes, port 0"]

    def test_max_prints(self):
        element = make(Print, "tap, MAXPRINTS 1")
        element.process(packet())
        element.process(packet())
        assert len(element.lines) == 1


class TestSetIPChecksum:
    def test_fixes_corrupted_checksum(self):
        element = make(SetIPChecksum)
        pkt = packet()
        pkt.data()[24] ^= 0xFF
        assert not pkt.ip().verify()
        element.process(pkt)
        assert pkt.ip().verify()


QUEUED_CONFIG = """
input :: FromDPDKDevice(PORT 0, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> EtherMirror -> q :: Queue(CAPACITY 256) -> output;
"""


class TestQueueInPipeline:
    def _build(self, options=None):
        trace = lambda port, core: FixedSizeTraceGenerator(128, TraceSpec(seed=1))
        return PacketMill(QUEUED_CONFIG, options or BuildOptions.vanilla(),
                          params=MachineParams(), trace=trace).build()

    def test_packets_flow_through_queue(self):
        binary = self._build()
        stats = binary.driver.run_batches(10)
        assert stats.rx_packets == 320
        assert stats.tx_packets == 320
        assert stats.drops == 0

    def test_no_buffer_leak_across_iterations(self):
        binary = self._build()
        binary.driver.run_batches(100)
        # The mempool never exhausts: queue drains each iteration.
        assert binary.model.mempool.available > 0

    def test_tinynf_rejects_queue_config(self):
        """The §3.1 contrast: TinyNF cannot buffer packets."""
        from repro.core.packetmill import BuildError

        with pytest.raises(BuildError, match="TinyNF|buffer"):
            self._build(BuildOptions(metadata_model=MetadataModel.TINYNF))

    def test_xchange_supports_queue_config(self):
        binary = self._build(BuildOptions(metadata_model=MetadataModel.XCHANGE, lto=True))
        stats = binary.driver.run_batches(10)
        assert stats.tx_packets == 320
