"""Tests for ICMPError, Tee, and app-originated buffer allocation."""

import pytest

from repro.click.config.ast import Declaration
from repro.click.element import ElementConfigError
from repro.click.elements.icmp_error import ICMPError
from repro.click.elements.ip import CheckIPHeader
from repro.click.elements.tee import Tee
from repro.core import nfs
from repro.core.options import BuildOptions, MetadataModel
from repro.core.packetmill import PacketMill
from repro.hw.params import MachineParams
from repro.net.addresses import IPv4Address
from repro.net.flows import PROTO_ICMP, PROTO_TCP, FlowSpec
from repro.net.packet import Packet
from repro.net.protocols import IP_PROTO_ICMP
from repro.net.protocols.icmp import IcmpHeader
from repro.net.trace import FixedSizeTraceGenerator, TraceSpec, build_frame


def make(cls, config=""):
    return cls("t", Declaration("t", cls.class_name, config))


def offending_packet(proto=PROTO_TCP, ttl=1):
    flow = FlowSpec(IPv4Address("10.0.0.7"), IPv4Address("192.168.0.1"),
                    proto, 1234, 80)
    pkt = Packet(build_frame(flow, 128, ttl=ttl))
    make(CheckIPHeader, "14").process(pkt)
    return pkt


class TestICMPError:
    def _element(self):
        return make(ICMPError, "192.168.1.1, timeexceeded")

    def test_builds_time_exceeded(self):
        element = self._element()
        pkt = offending_packet()
        assert element.process(pkt) == 0
        ip = pkt.ip()
        assert ip.proto == IP_PROTO_ICMP
        assert ip.src == IPv4Address("192.168.1.1")
        assert ip.dst == IPv4Address("10.0.0.7")  # back to the offender
        assert ip.verify()

    def test_icmp_header_and_quote(self):
        element = self._element()
        pkt = offending_packet()
        original_ip = bytes(pkt.data()[14:42])  # IP header + 8 bytes
        element.process(pkt)
        icmp = pkt.icmp()
        assert icmp.icmp_type == IcmpHeader.TIME_EXCEEDED
        assert icmp.verify(payload_len=28)
        quoted = pkt.data_bytes()[42:70]
        assert quoted == original_ip

    def test_ether_addresses_reversed(self):
        element = self._element()
        pkt = offending_packet()
        src_before = pkt.ether().src
        element.process(pkt)
        assert pkt.ether().dst == src_before

    def test_never_answers_icmp(self):
        element = self._element()
        assert element.process(offending_packet(proto=PROTO_ICMP)) is None
        assert element.errors_sent == 0

    def test_numeric_type_and_code(self):
        element = make(ICMPError, "10.0.0.1, 3, 1")
        pkt = offending_packet()
        element.process(pkt)
        assert pkt.icmp().icmp_type == 3
        assert pkt.icmp().code == 1

    def test_rejects_bad_config(self):
        with pytest.raises(ElementConfigError):
            make(ICMPError, "10.0.0.1")
        with pytest.raises(ElementConfigError):
            make(ICMPError, "10.0.0.1, weird")

    def test_router_icmp_path_end_to_end(self):
        """Expired-TTL packets come back as ICMP errors, not drops."""
        trace = lambda port, core: FixedSizeTraceGenerator(
            128, TraceSpec(seed=1, pool_size=16)
        )
        binary = PacketMill(nfs.router(icmp_errors=True), BuildOptions.vanilla(),
                            params=MachineParams(), trace=trace).build()
        gen = binary.pmds[0].nic.trace
        gen._pool = [build_frame(flow, 128, ttl=1) for flow in gen._pool_flows]
        stats = binary.driver.run_batches(4)
        assert stats.tx_packets == stats.rx_packets  # all returned as errors
        icmp_el = binary.graph.by_class("ICMPError")[0]
        assert icmp_el.errors_sent == stats.rx_packets


TEE_CONFIG = """
input :: FromDPDKDevice(PORT 0, BURST 16);
out0 :: ToDPDKDevice(PORT 0, BURST 16);
tap :: Counter;
input -> t :: Tee(2);
t[0] -> EtherMirror -> out0;
t[1] -> tap -> Discard;
"""


class TestTee:
    def test_configure(self):
        element = make(Tee, "3")
        assert element.n_outputs == 3
        with pytest.raises(ElementConfigError):
            make(Tee, "0")

    def test_pipeline_duplicates(self):
        trace = lambda port, core: FixedSizeTraceGenerator(128, TraceSpec(seed=2))
        binary = PacketMill(TEE_CONFIG, BuildOptions.vanilla(),
                            params=MachineParams(), trace=trace).build()
        stats = binary.driver.run_batches(10)
        tee = binary.graph.element("t")
        tap = binary.graph.element("tap")
        assert stats.rx_packets == 160
        assert stats.tx_packets == 160          # originals forwarded
        assert tap.packets == 160               # clones counted
        assert tee.cloned == 160
        assert stats.drops == 160               # clones discarded

    def test_no_buffer_leak_with_clones(self):
        trace = lambda port, core: FixedSizeTraceGenerator(128, TraceSpec(seed=2))
        binary = PacketMill(TEE_CONFIG, BuildOptions.vanilla(),
                            params=MachineParams(), trace=trace).build()
        binary.driver.run_batches(100)
        assert binary.model.mempool.available > 0

    def test_clone_is_data_independent(self):
        trace = lambda port, core: FixedSizeTraceGenerator(128, TraceSpec(seed=2))
        binary = PacketMill(TEE_CONFIG, BuildOptions.vanilla(),
                            params=MachineParams(), trace=trace).build()
        pmd = binary.pmds[0]
        pkt = pmd.rx_burst(1)[0]
        clone = binary.driver._clone_packet(binary.graph.element("t"), pkt)
        assert clone.data_bytes() == pkt.data_bytes()
        assert clone.mbuf is not pkt.mbuf
        clone.data()[0] ^= 0xFF
        assert clone.data_bytes() != pkt.data_bytes()

    def test_tinynf_rejects_tee(self):
        from repro.core.packetmill import BuildError

        trace = lambda port, core: FixedSizeTraceGenerator(128, TraceSpec(seed=2))
        with pytest.raises(BuildError):
            PacketMill(TEE_CONFIG,
                       BuildOptions(metadata_model=MetadataModel.TINYNF, lto=True),
                       params=MachineParams(), trace=trace).build()

    def test_xchange_supports_tee(self):
        trace = lambda port, core: FixedSizeTraceGenerator(128, TraceSpec(seed=2))
        binary = PacketMill(TEE_CONFIG,
                            BuildOptions(metadata_model=MetadataModel.XCHANGE, lto=True),
                            params=MachineParams(), trace=trace).build()
        stats = binary.driver.run_batches(5)
        assert stats.tx_packets == 80
