"""Tests for the Click configuration language (lexer + parser)."""

import pytest

from repro.click.config import ConfigError, parse_config, tokenize


class TestLexer:
    def test_declaration_tokens(self):
        tokens = tokenize("x :: Foo(1, 2);")
        kinds = [t.kind for t in tokens]
        assert kinds == ["IDENT", "DCOLON", "IDENT", "CONFIG", "SEMI"]
        assert tokens[3].value == "1, 2"

    def test_arrow_and_ports(self):
        tokens = tokenize("a[1] -> [2]b")
        kinds = [t.kind for t in tokens]
        assert kinds == ["IDENT", "LBRACKET", "NUMBER", "RBRACKET", "ARROW",
                         "LBRACKET", "NUMBER", "RBRACKET", "IDENT"]

    def test_line_comment(self):
        tokens = tokenize("a -> b // comment -> c\n;")
        assert [t.value for t in tokens if t.kind == "IDENT"] == ["a", "b"]

    def test_block_comment(self):
        tokens = tokenize("a /* x -> y */ -> b")
        assert [t.value for t in tokens if t.kind == "IDENT"] == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(ConfigError):
            tokenize("a /* oops")

    def test_nested_parens_in_config(self):
        tokens = tokenize("x :: Foo(a(b, c), d)")
        assert tokens[3].value == "a(b, c), d"

    def test_unbalanced_parens(self):
        with pytest.raises(ConfigError):
            tokenize("x :: Foo(a, b")

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens] == [1, 2, 3]

    def test_unexpected_character(self):
        with pytest.raises(ConfigError):
            tokenize("a -> b $ c")


class TestParser:
    def test_declaration(self):
        ast = parse_config("fd :: FromDPDKDevice(PORT 0); fd -> fd2 :: Discard;")
        assert ast.declarations["fd"].class_name == "FromDPDKDevice"
        assert ast.declarations["fd"].config == "PORT 0"

    def test_simple_chain(self):
        ast = parse_config("""
        a :: FromDPDKDevice(0);
        b :: EtherMirror;
        c :: ToDPDKDevice(0);
        a -> b -> c;
        """)
        assert len(ast.connections) == 2
        assert ast.connections[0].src == "a"
        assert ast.connections[1].dst == "c"

    def test_inline_anonymous_elements(self):
        ast = parse_config("FromDPDKDevice(0) -> EtherMirror -> ToDPDKDevice(0);")
        assert len(ast.declarations) == 3
        classes = {d.class_name for d in ast.declarations.values()}
        assert classes == {"FromDPDKDevice", "EtherMirror", "ToDPDKDevice"}

    def test_port_syntax(self):
        ast = parse_config("""
        c :: Classifier(12/0800, -);
        d :: Discard;  e :: Discard;
        c[0] -> d;  c[1] -> e;
        """)
        ports = {(conn.src_port, conn.dst) for conn in ast.connections}
        assert ports == {(0, "d"), (1, "e")}

    def test_input_port_syntax(self):
        ast = parse_config("""
        a :: Discard; b :: Counter;
        b -> [0]a;
        """)
        # Discard has 0 outputs but parsing is structural here.
        assert ast.connections[0].dst_port == 0

    def test_declaration_heading_a_chain(self):
        ast = parse_config("x :: Counter -> Discard;")
        assert len(ast.connections) == 1
        assert ast.connections[0].src == "x"

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(ConfigError):
            parse_config("x :: Counter; x :: Discard;")

    def test_undeclared_lowercase_reference_rejected(self):
        with pytest.raises(ConfigError):
            parse_config("nope -> Discard;")

    def test_duplicate_output_port_rejected(self):
        with pytest.raises(ConfigError):
            parse_config("""
            a :: Counter; b :: Discard; c :: Discard;
            a -> b; a -> c;
            """)

    def test_keyword_and_positional_args(self):
        ast = parse_config("x :: FromDPDKDevice(PORT 1, N_QUEUES 2, BURST 64) -> Discard;")
        decl = ast.declarations["x"]
        assert decl.keyword_args() == {"PORT": "1", "N_QUEUES": "2", "BURST": "64"}
        assert decl.positional_args() == []

    def test_positional_args_with_nested_commas(self):
        ast = parse_config("x :: RadixIPLookup(10.0.0.0/8 0, 0.0.0.0/0 1); x -> Discard;")
        assert ast.declarations["x"].config_args() == ["10.0.0.0/8 0", "0.0.0.0/0 1"]

    def test_outputs_and_inputs_helpers(self):
        ast = parse_config("""
        a :: Classifier(12/0800, -); b :: Discard; c :: Discard;
        a[0] -> b; a[1] -> c;
        """)
        assert ast.outputs_of("a") == [(0, "b", 0), (1, "c", 0)]
        assert ast.inputs_of("b") == [("a", 0, 0)]
