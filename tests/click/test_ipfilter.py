"""Tests for IPFilter and its expression language."""

import pytest

from repro.click.config.ast import Declaration
from repro.click.element import ElementConfigError
from repro.click.elements.ip import CheckIPHeader
from repro.click.elements.ipfilter import IPFilter, parse_filter_expression
from repro.net.addresses import IPv4Address
from repro.net.flows import PROTO_ICMP, PROTO_TCP, PROTO_UDP, FlowSpec
from repro.net.packet import Packet
from repro.net.trace import build_frame


def make_filter(config):
    return IPFilter("f", Declaration("f", "IPFilter", config))


def pkt(src="10.0.0.1", dst="192.168.0.1", proto=PROTO_TCP, sport=1234, dport=80):
    flow = FlowSpec(IPv4Address(src), IPv4Address(dst), proto, sport, dport)
    packet = Packet(build_frame(flow, 128))
    CheckIPHeader("chk", Declaration("chk", "CheckIPHeader", "14")).process(packet)
    return packet


class TestExpressionLanguage:
    def test_protocol_primitives(self):
        assert parse_filter_expression("tcp")(pkt(proto=PROTO_TCP))
        assert not parse_filter_expression("tcp")(pkt(proto=PROTO_UDP))
        assert parse_filter_expression("icmp")(pkt(proto=PROTO_ICMP))

    def test_all_none(self):
        assert parse_filter_expression("all")(pkt())
        assert not parse_filter_expression("none")(pkt())

    def test_src_dst_host(self):
        assert parse_filter_expression("src host 10.0.0.1")(pkt())
        assert not parse_filter_expression("src host 10.0.0.2")(pkt())
        assert parse_filter_expression("dst host 192.168.0.1")(pkt())

    def test_undirected_host(self):
        predicate = parse_filter_expression("host 192.168.0.1")
        assert predicate(pkt(dst="192.168.0.1"))
        assert predicate(pkt(src="192.168.0.1", dst="10.9.9.9"))
        assert not predicate(pkt(src="1.1.1.1", dst="2.2.2.2"))

    def test_net_prefix(self):
        assert parse_filter_expression("src net 10.0.0.0/8")(pkt())
        assert not parse_filter_expression("src net 11.0.0.0/8")(pkt())

    def test_ports(self):
        assert parse_filter_expression("dst port 80")(pkt(dport=80))
        assert not parse_filter_expression("dst port 443")(pkt(dport=80))
        assert parse_filter_expression("src port 1234")(pkt(sport=1234))

    def test_port_on_icmp_never_matches(self):
        assert not parse_filter_expression("port 80")(pkt(proto=PROTO_ICMP))

    def test_boolean_operators(self):
        expr = "tcp && dst port 80"
        assert parse_filter_expression(expr)(pkt(proto=PROTO_TCP, dport=80))
        assert not parse_filter_expression(expr)(pkt(proto=PROTO_UDP, dport=80))
        either = parse_filter_expression("udp || icmp")
        assert either(pkt(proto=PROTO_UDP))
        assert either(pkt(proto=PROTO_ICMP))
        assert not either(pkt(proto=PROTO_TCP))

    def test_not_and_parentheses(self):
        expr = "! (tcp && dst port 80)"
        assert not parse_filter_expression(expr)(pkt(dport=80))
        assert parse_filter_expression(expr)(pkt(dport=443))

    def test_precedence_and_binds_tighter(self):
        # a || b && c  ==  a || (b && c)
        expr = "icmp || tcp && dst port 80"
        assert parse_filter_expression(expr)(pkt(proto=PROTO_ICMP))
        assert parse_filter_expression(expr)(pkt(proto=PROTO_TCP, dport=80))
        assert not parse_filter_expression(expr)(pkt(proto=PROTO_TCP, dport=443))

    @pytest.mark.parametrize("bad", [
        "", "frobnicate", "src", "src host", "tcp &&", "( tcp",
        "tcp ) extra", "src net 10.0.0.0", "dst port abc",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ElementConfigError):
            parse_filter_expression(bad)


class TestIPFilterElement:
    def test_first_match_wins(self):
        element = make_filter("deny dst port 80, allow tcp, allow all")
        assert element.process(pkt(dport=80)) is None
        assert element.process(pkt(dport=443)) == 0
        assert element.matched == [1, 1, 0]

    def test_numeric_actions_set_outputs(self):
        element = make_filter("0 tcp, 1 udp, 2 all")
        assert element.n_outputs == 3
        assert element.process(pkt(proto=PROTO_UDP)) == 1
        assert element.process(pkt(proto=PROTO_ICMP)) == 2

    def test_unmatched_dropped(self):
        element = make_filter("allow dst port 443")
        assert element.process(pkt(dport=80)) is None
        assert element.unmatched == 1

    def test_requires_rules(self):
        with pytest.raises(ElementConfigError):
            make_filter("")

    def test_rejects_bad_action(self):
        with pytest.raises(ElementConfigError):
            make_filter("maybe tcp")

    def test_rule_needs_expression(self):
        with pytest.raises(ElementConfigError):
            make_filter("allow")

    def test_in_pipeline(self):
        from repro.core.options import BuildOptions
        from repro.core.packetmill import PacketMill
        from repro.hw.params import MachineParams
        from repro.net.trace import FixedSizeTraceGenerator, TraceSpec

        config = """
        input :: FromDPDKDevice(PORT 0, BURST 32);
        output :: ToDPDKDevice(PORT 0, BURST 32);
        input -> CheckIPHeader(14)
              -> f :: IPFilter(deny dst port 22, allow all)
              -> EtherMirror -> output;
        """
        trace = lambda port, core: FixedSizeTraceGenerator(128, TraceSpec(seed=3))
        binary = PacketMill(config, BuildOptions.packetmill(),
                            params=MachineParams(), trace=trace).build()
        stats = binary.driver.run_batches(10)
        element = binary.graph.element("f")
        assert stats.rx_packets == stats.tx_packets + stats.drops
        assert element.matched[1] == stats.tx_packets
