"""Tests for graph building and the run-to-completion driver."""

import pytest

from repro.click.config.lexer import ConfigError
from repro.click.driver import (
    DISPATCH_DIRECT,
    DISPATCH_INLINE,
    DISPATCH_VIRTUAL,
    DispatchPolicy,
)
from repro.click.graph import ProcessingGraph
from repro.core import nfs
from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.hw.cpu import CpuCore
from repro.hw.memory import MemorySystem
from repro.hw.params import MachineParams
from repro.net.trace import CampusTraceGenerator, FixedSizeTraceGenerator, TraceSpec


class TestProcessingGraph:
    def test_router_graph_builds(self):
        graph = ProcessingGraph.from_text(nfs.router())
        assert len(graph) == 9
        assert graph.element("c").n_outputs == 3

    def test_wiring(self):
        graph = ProcessingGraph.from_text(nfs.forwarder())
        src = graph.element("input")
        mirror, port = src.target(0)
        assert mirror.decl.class_name == "EtherMirror"
        assert port == 0

    def test_sources(self):
        graph = ProcessingGraph.from_text(nfs.forwarder_two_nics())
        assert {e.name for e in graph.sources()} == {"in0", "in1"}

    def test_bad_output_port_rejected(self):
        with pytest.raises(ConfigError):
            ProcessingGraph.from_text("a :: Counter; b :: Discard; a[3] -> b;")

    def test_bad_input_port_rejected(self):
        with pytest.raises(ConfigError):
            ProcessingGraph.from_text("a :: Counter; b :: Discard; a -> [2]b;")

    def test_reachability(self):
        graph = ProcessingGraph.from_text(nfs.router())
        reachable = graph.reachable_from(graph.element("input"))
        names = {e.name for e in reachable}
        assert "c" in names and "rt" in names and "output" in names

    def test_all_elements_deterministic(self):
        a = [e.name for e in ProcessingGraph.from_text(nfs.router()).all_elements()]
        b = [e.name for e in ProcessingGraph.from_text(nfs.router()).all_elements()]
        assert a == b

    def test_by_class(self):
        graph = ProcessingGraph.from_text(nfs.forwarder_two_nics())
        assert len(graph.by_class("FromDPDKDevice")) == 2


def build(config, options=None, frame=128, freq=2.3, seed=0):
    params = MachineParams(freq_ghz=freq)
    trace = lambda port, core: FixedSizeTraceGenerator(frame, TraceSpec(seed=seed + port))
    return PacketMill(config, options or BuildOptions.vanilla(), params=params,
                      trace=trace, seed=seed).build()


class TestDriverFunctional:
    def test_forwarder_forwards_everything(self):
        binary = build(nfs.forwarder())
        stats = binary.driver.run_batches(20)
        assert stats.rx_packets == 20 * 32
        assert stats.tx_packets == stats.rx_packets
        assert stats.drops == 0

    def test_forwarder_swaps_macs(self):
        binary = build(nfs.forwarder())
        binary.driver.run_batches(5)
        # The NIC transmitted packets whose MACs were swapped: DUT MAC as
        # destination became the source.
        nic = binary.pmds[0].nic
        assert nic.tx_sent == 5 * 32

    def test_router_routes_ip_traffic(self):
        binary = build(nfs.router())
        stats = binary.driver.run_batches(20)
        assert stats.rx_packets == 640
        assert stats.tx_packets == 640
        assert stats.drops == 0

    def test_router_decrements_ttl_functionally(self):
        binary = build(nfs.router())
        # Pull one packet through manually to inspect the transformation.
        pmd = binary.pmds[0]
        pkt = pmd.rx_burst(1)[0]
        ttl_before = pkt.data_bytes()[22]
        tx_queue = {}
        classifier = binary.graph.element("input").target(0)[0]
        binary.driver._push_batch(classifier, [pkt], tx_queue)
        assert pkt.ip().ttl == ttl_before - 1
        assert pkt.ip().verify()
        assert len(tx_queue) == 1

    def test_expired_ttl_dropped(self):
        params = MachineParams()
        trace = lambda port, core: FixedSizeTraceGenerator(
            128, TraceSpec(seed=1, pool_size=32)
        )
        binary = PacketMill(nfs.router(), BuildOptions.vanilla(), params=params,
                            trace=trace).build()
        # Rewrite the trace pool to TTL=1 frames.
        gen = binary.pmds[0].nic.trace
        from repro.net.trace import build_frame

        gen._pool = [
            build_frame(flow, 128, ttl=1) for flow in gen._pool_flows
        ]
        stats = binary.driver.run_batches(4)
        assert stats.tx_packets == 0
        assert stats.drops == stats.rx_packets
        dropper = binary.graph.element(next(iter(stats.drops_by_element)))
        assert dropper.decl.class_name == "DecIPTTL"

    def test_ids_router_vlan_encapsulates(self):
        binary = build(nfs.ids_router())
        stats = binary.driver.run_batches(10)
        assert stats.tx_packets == stats.rx_packets
        vlan = binary.graph.by_class("VLANEncap")[0]
        assert vlan.encapsulated == stats.rx_packets

    def test_nat_router_translates(self):
        binary = build(nfs.nat_router())
        stats = binary.driver.run_batches(10)
        nat = binary.graph.by_class("IPRewriter")[0]
        assert stats.tx_packets == stats.rx_packets
        assert nat.rewrites > 0
        assert nat.new_flows <= nat.rewrites

    def test_campus_trace_router_end_to_end(self):
        params = MachineParams()
        binary = PacketMill(nfs.router(), BuildOptions.packetmill(), params=params,
                            trace=lambda p, c: CampusTraceGenerator(TraceSpec(seed=9))).build()
        stats = binary.driver.run_batches(30)
        assert stats.tx_packets == stats.rx_packets
        assert stats.drops == 0


class TestDispatchPolicy:
    def _cpu(self):
        params = MachineParams()
        return CpuCore(params, MemorySystem(params)), params

    def _element(self):
        graph = ProcessingGraph.from_text(nfs.forwarder())
        return graph.element("input")

    def test_virtual_costs_most(self):
        cpu, params = self._cpu()
        element = self._element()
        DispatchPolicy(DISPATCH_VIRTUAL).charge(cpu, element, params)
        virtual_ns = cpu.elapsed_ns()
        cpu.reset()
        DispatchPolicy(DISPATCH_DIRECT).charge(cpu, element, params)
        direct_ns = cpu.elapsed_ns()
        cpu.reset()
        DispatchPolicy(DISPATCH_INLINE, static_segment=True).charge(cpu, element, params)
        inline_ns = cpu.elapsed_ns()
        assert virtual_ns > direct_ns > inline_ns

    def test_virtual_counts_branch_misses(self):
        cpu, params = self._cpu()
        DispatchPolicy(DISPATCH_VIRTUAL).charge(cpu, self._element(), params)
        assert cpu.counters.branch_misses >= 0  # expectation accumulates

    def test_static_segment_dispatch_warms_up(self):
        """Static-segment dispatch loads hit L1 after the first batch."""
        cpu, params = self._cpu()
        element = self._element()
        from repro.hw.layout import AddressSpace

        element.state_region = AddressSpace().alloc_static("e", 64)
        policy = DispatchPolicy(DISPATCH_DIRECT, static_segment=True)
        policy.charge(cpu, element, params)
        cold = cpu.elapsed_ns()
        cpu.reset()
        policy.charge(cpu, element, params)
        warm = cpu.elapsed_ns()
        assert warm < cold
