"""Tests for the radix trie and the RadixIPLookup/IPRewriter elements."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.click.config.ast import Declaration
from repro.click.element import ElementConfigError
from repro.click.elements.ip import CheckIPHeader
from repro.click.elements.nat import IPRewriter
from repro.click.elements.routing import RadixIPLookup, RadixTrie
from repro.net.addresses import IPv4Address
from repro.net.flows import PROTO_ICMP, PROTO_TCP, PROTO_UDP, FlowSpec
from repro.net.packet import Packet
from repro.net.trace import build_frame


def make(cls, config):
    return cls("t", Declaration("t", cls.class_name, config))


def packet_to(dst, proto=PROTO_TCP, src="10.0.0.1", sport=1234, dport=80):
    flow = FlowSpec(IPv4Address(src), IPv4Address(dst), proto, sport, dport)
    pkt = Packet(build_frame(flow, 128))
    make(CheckIPHeader, "14").process(pkt)
    return pkt


class TestRadixTrie:
    def test_exact_match(self):
        trie = RadixTrie()
        trie.insert(IPv4Address("10.0.0.1"), 32, None, 3)
        assert trie.lookup(IPv4Address("10.0.0.1")) == (None, 3)
        assert trie.lookup(IPv4Address("10.0.0.2")) is None

    def test_prefix_match(self):
        trie = RadixTrie()
        trie.insert(IPv4Address("192.168.0.0"), 16, None, 1)
        assert trie.lookup(IPv4Address("192.168.44.5")) == (None, 1)
        assert trie.lookup(IPv4Address("192.169.0.1")) is None

    def test_longest_prefix_wins(self):
        trie = RadixTrie()
        trie.insert(IPv4Address("10.0.0.0"), 8, None, 1)
        trie.insert(IPv4Address("10.1.0.0"), 16, None, 2)
        trie.insert(IPv4Address("10.1.2.0"), 24, None, 3)
        assert trie.lookup(IPv4Address("10.9.9.9"))[1] == 1
        assert trie.lookup(IPv4Address("10.1.9.9"))[1] == 2
        assert trie.lookup(IPv4Address("10.1.2.9"))[1] == 3

    def test_default_route(self):
        trie = RadixTrie()
        trie.insert(IPv4Address("0.0.0.0"), 0, IPv4Address("10.0.0.254"), 9)
        assert trie.lookup(IPv4Address("8.8.8.8")) == (IPv4Address("10.0.0.254"), 9)

    def test_non_octet_prefix_lengths(self):
        trie = RadixTrie()
        trie.insert(IPv4Address("192.168.64.0"), 18, None, 2)
        assert trie.lookup(IPv4Address("192.168.100.1"))[1] == 2
        assert trie.lookup(IPv4Address("192.168.1.1")) is None

    def test_bad_prefix_length(self):
        with pytest.raises(ValueError):
            RadixTrie().insert(IPv4Address("1.2.3.4"), 40, None, 0)

    def test_footprint_grows_with_routes(self):
        trie = RadixTrie()
        empty = trie.footprint_bytes()
        for i in range(16):
            trie.insert(IPv4Address("10.%d.0.0" % i), 16, None, 0)
        assert trie.footprint_bytes() > empty

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=(1 << 32) - 1),
                st.integers(min_value=8, max_value=32),
                st.integers(min_value=0, max_value=3),
            ),
            min_size=1,
            max_size=24,
        ),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
    )
    def test_matches_linear_scan_model(self, routes, probe):
        """LPM result always equals a brute-force longest-match scan."""
        trie = RadixTrie()
        table = []
        for addr, plen, port in routes:
            prefix = IPv4Address(addr)
            trie.insert(prefix, plen, None, port)
            table.append((prefix, plen, port))
        probe_ip = IPv4Address(probe)
        best = None
        best_len = -1
        for prefix, plen, port in table:
            if probe_ip.in_prefix(prefix, plen) and plen >= best_len:
                # Later duplicates of equal length overwrite, like insert().
                best, best_len = port, plen
        got = trie.lookup(probe_ip)
        if best is None:
            assert got is None
        else:
            assert got is not None and got[1] == best


class TestRadixIPLookupElement:
    CONFIG = "192.168.0.0/18 0, 192.168.64.0/18 1, 0.0.0.0/0 2"

    def test_output_ports(self):
        element = make(RadixIPLookup, self.CONFIG)
        assert element.n_outputs == 3
        assert element.process(packet_to("192.168.1.1")) == 0
        assert element.process(packet_to("192.168.100.1")) == 1
        assert element.process(packet_to("8.8.8.8")) == 2

    def test_dst_ip_annotation_set(self):
        element = make(RadixIPLookup, self.CONFIG)
        pkt = packet_to("192.168.1.1")
        element.process(pkt)
        assert pkt.anno_u32(4) == IPv4Address("192.168.1.1").value

    def test_gateway_route_sets_gateway_annotation(self):
        element = make(RadixIPLookup, "0.0.0.0/0 10.0.0.254 0")
        pkt = packet_to("8.8.8.8")
        element.process(pkt)
        assert pkt.anno_u32(4) == IPv4Address("10.0.0.254").value

    def test_requires_routes(self):
        with pytest.raises(ElementConfigError):
            make(RadixIPLookup, "")


class TestIPRewriter:
    def test_rewrites_source(self):
        nat = make(IPRewriter, "SRCIP 10.99.0.1")
        pkt = packet_to("192.168.0.1", sport=5555)
        assert nat.process(pkt) == 0
        assert pkt.ip().src == IPv4Address("10.99.0.1")
        assert pkt.ip().verify()
        assert pkt.tcp().src_port != 5555
        assert nat.new_flows == 1

    def test_same_flow_same_mapping(self):
        nat = make(IPRewriter, "SRCIP 10.99.0.1")
        a = packet_to("192.168.0.1", sport=5555)
        b = packet_to("192.168.0.1", sport=5555)
        nat.process(a)
        nat.process(b)
        assert a.tcp().src_port == b.tcp().src_port
        assert nat.new_flows == 1

    def test_distinct_flows_distinct_ports(self):
        nat = make(IPRewriter, "SRCIP 10.99.0.1")
        a = packet_to("192.168.0.1", sport=5555)
        b = packet_to("192.168.0.1", sport=6666)
        nat.process(a)
        nat.process(b)
        assert a.tcp().src_port != b.tcp().src_port
        assert nat.new_flows == 2

    def test_reverse_mapping_recorded(self):
        nat = make(IPRewriter, "SRCIP 10.99.0.1")
        pkt = packet_to("192.168.0.1", sport=5555)
        nat.process(pkt)
        public_port = pkt.tcp().src_port
        reverse_key = (
            IPv4Address("192.168.0.1").value,
            IPv4Address("10.99.0.1").value,
            PROTO_TCP,
            80,
            public_port,
        )
        assert nat.table.lookup(reverse_key) == (IPv4Address("10.0.0.1").value, 5555)

    def test_udp_flow(self):
        nat = make(IPRewriter, "SRCIP 10.99.0.1")
        pkt = packet_to("192.168.0.1", proto=PROTO_UDP)
        assert nat.process(pkt) == 0
        assert pkt.ip().src == IPv4Address("10.99.0.1")
        assert pkt.ip().verify()

    def test_icmp_passes_untranslated(self):
        nat = make(IPRewriter, "SRCIP 10.99.0.1")
        pkt = packet_to("192.168.0.1", proto=PROTO_ICMP)
        assert nat.process(pkt) == 0
        assert pkt.ip().src == IPv4Address("10.0.0.1")

    def test_requires_public_ip(self):
        with pytest.raises(ElementConfigError):
            make(IPRewriter, "")

    def test_port_allocation_wraps(self):
        from repro.click.elements.nat import FIRST_NAT_PORT, LAST_NAT_PORT

        nat = make(IPRewriter, "SRCIP 10.99.0.1")
        nat._next_port = LAST_NAT_PORT
        assert nat._allocate_port() == LAST_NAT_PORT
        assert nat._allocate_port() == FIRST_NAT_PORT
