"""Tests for the cuckoo hash table, including hypothesis model checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.click.elements.cuckoo import (
    BUCKET_SLOTS,
    CuckooFullError,
    CuckooHashTable,
)


class TestBasics:
    def test_rejects_bad_bucket_count(self):
        with pytest.raises(ValueError):
            CuckooHashTable(n_buckets=100)
        with pytest.raises(ValueError):
            CuckooHashTable(n_buckets=1)

    def test_insert_lookup(self):
        table = CuckooHashTable(n_buckets=16)
        table.insert(("flow", 1), "a")
        assert table.lookup(("flow", 1)) == "a"
        assert table.lookup(("flow", 2)) is None

    def test_update_in_place(self):
        table = CuckooHashTable(n_buckets=16)
        table.insert("k", 1)
        table.insert("k", 2)
        assert table.lookup("k") == 2
        assert table.entries == 1

    def test_contains(self):
        table = CuckooHashTable(n_buckets=16)
        table.insert("k", 1)
        assert "k" in table
        assert "missing" not in table

    def test_delete(self):
        table = CuckooHashTable(n_buckets=16)
        table.insert("k", 1)
        assert table.delete("k")
        assert table.lookup("k") is None
        assert not table.delete("k")
        assert table.entries == 0

    def test_displacement_fills_past_one_bucket(self):
        """More inserts than one bucket holds must still all be found."""
        table = CuckooHashTable(n_buckets=64)
        keys = [("k", i) for i in range(BUCKET_SLOTS * 20)]
        for i, key in enumerate(keys):
            table.insert(key, i)
        for i, key in enumerate(keys):
            assert table.lookup(key) == i

    def test_high_load_factor_reachable(self):
        table = CuckooHashTable(n_buckets=64)
        inserted = 0
        try:
            for i in range(table.capacity):
                table.insert(("key", i), i)
                inserted += 1
        except CuckooFullError:
            pass
        assert table.load_factor() > 0.8, "cuckoo should fill past 80%%: %d" % inserted

    def test_items_iteration(self):
        table = CuckooHashTable(n_buckets=16)
        data = {("k", i): i for i in range(10)}
        for key, value in data.items():
            table.insert(key, value)
        assert dict(table.items()) == data

    def test_footprint(self):
        table = CuckooHashTable(n_buckets=1024)
        assert table.footprint_bytes() == 1024 * BUCKET_SLOTS * 16


class TestModelBased:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete", "lookup"]),
                st.integers(min_value=0, max_value=50),
            ),
            max_size=200,
        )
    )
    def test_matches_dict_model(self, operations):
        """The cuckoo table behaves exactly like a dict."""
        table = CuckooHashTable(n_buckets=64)
        model = {}
        for op, key in operations:
            if op == "insert":
                table.insert(key, key * 2)
                model[key] = key * 2
            elif op == "delete":
                assert table.delete(key) == (key in model)
                model.pop(key, None)
            else:
                assert table.lookup(key) == model.get(key)
            assert table.entries == len(model)
        for key, value in model.items():
            assert table.lookup(key) == value
