"""Tests for the handler mechanism and the config-level tools."""

import pytest

from repro.click.config import parse_config
from repro.click.graph import ProcessingGraph
from repro.click.handlers import HandlerBroker, HandlerError
from repro.click.tools import flatten_config, remove_dead_elements
from repro.core import nfs
from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.hw.params import MachineParams
from repro.net.trace import FixedSizeTraceGenerator, TraceSpec


def build_router():
    trace = lambda port, core: FixedSizeTraceGenerator(256, TraceSpec(seed=1))
    return PacketMill(nfs.router(), BuildOptions.vanilla(),
                      params=MachineParams(), trace=trace).build()


class TestHandlers:
    def test_common_handlers(self):
        graph = ProcessingGraph.from_text(nfs.router())
        broker = HandlerBroker(graph)
        assert broker.read("rt.class") == "RadixIPLookup"
        assert broker.read("c.name") == "c"
        assert "BURST" in broker.read("input.config")

    def test_live_counters_through_handlers(self):
        binary = build_router()
        binary.driver.run_batches(5)
        broker = HandlerBroker(binary.graph)
        checker = binary.graph.by_class("CheckIPHeader")[0]
        assert broker.read("%s.count" % checker.name) == str(5 * 32)
        assert broker.read("rt.nroutes") == "5"

    def test_write_handler_reset(self):
        config = "f :: FromDPDKDevice(0) -> cnt :: Counter -> Discard;"
        trace = lambda port, core: FixedSizeTraceGenerator(64, TraceSpec(seed=1))
        binary = PacketMill(config, BuildOptions.vanilla(),
                            params=MachineParams(), trace=trace).build()
        binary.driver.run_batches(2)
        broker = HandlerBroker(binary.graph)
        assert broker.read("cnt.count") == "64"
        broker.write("cnt.reset")
        assert broker.read("cnt.count") == "0"

    def test_unknown_element(self):
        broker = HandlerBroker(ProcessingGraph.from_text(nfs.forwarder()))
        with pytest.raises(HandlerError):
            broker.read("ghost.count")

    def test_unknown_handler_lists_available(self):
        broker = HandlerBroker(ProcessingGraph.from_text(nfs.router()))
        with pytest.raises(HandlerError, match="available"):
            broker.read("rt.bogus")

    def test_bad_path(self):
        broker = HandlerBroker(ProcessingGraph.from_text(nfs.forwarder()))
        with pytest.raises(HandlerError):
            broker.read("no-dot")

    def test_read_only_handler_rejects_write(self):
        broker = HandlerBroker(ProcessingGraph.from_text(nfs.router()))
        with pytest.raises(HandlerError):
            broker.write("rt.nroutes", "9")

    def test_list_handlers(self):
        broker = HandlerBroker(ProcessingGraph.from_text(nfs.router()))
        handlers = broker.list_handlers("rt")
        assert "nroutes" in handlers and "class" in handlers

    def test_dump(self):
        binary = build_router()
        binary.driver.run_batches(2)
        dump = HandlerBroker(binary.graph).dump()
        assert "rt :: RadixIPLookup" in dump
        assert "nroutes: 5" in dump


class TestFlatten:
    def test_inline_elements_become_declarations(self):
        flat = flatten_config("FromDPDKDevice(0) -> EtherMirror -> ToDPDKDevice(0);")
        ast = parse_config(flat)
        assert len(ast.declarations) == 3
        assert len(ast.connections) == 2

    def test_flatten_is_idempotent(self):
        once = flatten_config(nfs.router())
        assert flatten_config(once) == once

    def test_flatten_preserves_semantics(self):
        original = parse_config(nfs.router())
        flat = parse_config(flatten_config(nfs.router()))
        assert set(original.declarations) == set(flat.declarations)

        def edges(ast):
            return {(c.src, c.src_port, c.dst, c.dst_port) for c in ast.connections}

        assert edges(original) == edges(flat)


DEAD_CONFIG = """
input :: FromDPDKDevice(0);
output :: ToDPDKDevice(0);
orphan :: Counter;
zombie :: EtherMirror;
zombie -> orphan;
input -> EtherMirror -> output;
"""


class TestUndead:
    def test_removes_unreachable_elements(self):
        report = remove_dead_elements(DEAD_CONFIG)
        assert set(report.removed) == {"orphan", "zombie"}
        assert report.n_removed == 2

    def test_keeps_live_path(self):
        report = remove_dead_elements(DEAD_CONFIG)
        assert "input" in report.live and "output" in report.live

    def test_clean_config_still_builds_and_runs(self):
        report = remove_dead_elements(DEAD_CONFIG)
        trace = lambda port, core: FixedSizeTraceGenerator(64, TraceSpec(seed=1))
        binary = PacketMill(report.config_text(), BuildOptions.vanilla(),
                            params=MachineParams(), trace=trace).build()
        stats = binary.driver.run_batches(3)
        assert stats.tx_packets == 96

    def test_no_false_positives_on_router(self):
        report = remove_dead_elements(nfs.router())
        assert report.removed == []

    def test_transitively_dead_chain(self):
        config = DEAD_CONFIG + "zombie2 :: Counter; orphan -> zombie2;"
        report = remove_dead_elements(config)
        assert "zombie2" in report.removed
