"""Tests for the ControlSocket protocol."""

import pytest

from repro.click.controlsocket import (
    PROTOCOL_BANNER,
    ControlSocketSession,
    parse_read_response,
)
from repro.core import nfs
from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.hw.params import MachineParams
from repro.net.trace import FixedSizeTraceGenerator, TraceSpec


@pytest.fixture
def session():
    trace = lambda port, core: FixedSizeTraceGenerator(256, TraceSpec(seed=1))
    binary = PacketMill(nfs.router(), BuildOptions.vanilla(),
                        params=MachineParams(), trace=trace).build()
    binary.driver.run_batches(3)
    return ControlSocketSession(binary.graph)


class TestProtocol:
    def test_banner(self, session):
        assert session.banner() == PROTOCOL_BANNER

    def test_read(self, session):
        response = session.handle("READ rt.nroutes")
        assert response.startswith("200")
        assert parse_read_response(response) == "5"

    def test_read_data_length(self, session):
        response = session.handle("READ rt.nroutes")
        assert "DATA 1" in response

    def test_read_unknown_handler(self, session):
        assert session.handle("READ rt.bogus").startswith("501")

    def test_read_unknown_element(self, session):
        assert session.handle("READ ghost.count").startswith("501")

    def test_read_missing_arg(self, session):
        assert session.handle("READ").startswith("500")

    def test_write(self, session):
        config = "f :: FromDPDKDevice(0) -> cnt :: Counter -> Discard;"
        trace = lambda port, core: FixedSizeTraceGenerator(64, TraceSpec(seed=1))
        binary = PacketMill(config, BuildOptions.vanilla(),
                            params=MachineParams(), trace=trace).build()
        binary.driver.run_batches(1)
        s = ControlSocketSession(binary.graph)
        assert parse_read_response(s.handle("READ cnt.count")) == "32"
        assert s.handle("WRITE cnt.reset").startswith("200")
        assert parse_read_response(s.handle("READ cnt.count")) == "0"

    def test_write_read_only_handler(self, session):
        assert session.handle("WRITE rt.nroutes 3").startswith("501")

    def test_checkread_checkwrite(self, session):
        assert session.handle("CHECKREAD rt.nroutes").startswith("200")
        assert session.handle("CHECKWRITE rt.nroutes").startswith("501")

    def test_list(self, session):
        response = session.handle("LIST")
        assert response.startswith("200")
        payload = parse_read_response(response)
        assert "rt" in payload.splitlines()

    def test_handlers(self, session):
        response = session.handle("HANDLERS rt")
        assert "nroutes" in response

    def test_handlers_unknown_element(self, session):
        assert session.handle("HANDLERS nope").startswith("501")

    def test_unknown_command(self, session):
        assert session.handle("FROB x").startswith("500")

    def test_empty_command(self, session):
        assert session.handle("   ").startswith("500")

    def test_quit_closes(self, session):
        assert session.handle("QUIT").startswith("200")
        assert session.handle("READ rt.nroutes").startswith("500")

    def test_script(self, session):
        responses = session.handle_script(["LIST", "READ rt.nroutes"])
        assert all(r.startswith("200") for r in responses)

    def test_case_insensitive_verbs(self, session):
        assert session.handle("read rt.nroutes").startswith("200")


class TestParseReadResponse:
    def test_error_response_is_none(self):
        assert parse_read_response("501 nope") is None

    def test_malformed_response_is_none(self):
        assert parse_read_response("200 OK but no data") is None

    def test_multiline_payload(self):
        response = "200 Read handler OK\nDATA 3\na\nb"
        assert parse_read_response(response) == "a\nb"
