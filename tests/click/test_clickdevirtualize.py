"""Tests for the click-devirtualize source-to-source tool."""

from repro.click.config import parse_config
from repro.click.tools.devirtualize import analyze, devirtualize_config
from repro.core import nfs


class TestAnalyze:
    def test_resolves_concrete_callees(self):
        calls = analyze(nfs.forwarder())
        by_caller = {c.caller_class: c.callee_class for c in calls}
        assert by_caller["FromDPDKDevice"] == "EtherMirror"
        assert by_caller["EtherMirror"] == "ToDPDKDevice"

    def test_ports_preserved(self):
        calls = analyze(nfs.router())
        classifier_calls = [c for c in calls if c.caller == "c"]
        assert {c.output_port for c in classifier_calls} == {0, 1, 2}

    def test_one_call_per_connection(self):
        config = nfs.router()
        assert len(analyze(config)) == len(parse_config(config).connections)


class TestDevirtualizeConfig:
    def test_specialized_class_per_element(self):
        result = devirtualize_config(nfs.forwarder())
        assert len(result.class_map) == 3
        for name, cls in result.class_map.items():
            assert "Specialized" in cls

    def test_counts_removed_virtual_calls(self):
        result = devirtualize_config(nfs.router())
        assert result.n_virtual_calls_removed == len(result.ast.connections)

    def test_source_contains_direct_calls(self):
        result = devirtualize_config(nfs.forwarder())
        assert "click-devirtualize" in result.source
        assert "EtherMirror::push" in result.source
        assert "switch (port)" in result.source

    def test_source_has_one_class_per_element(self):
        result = devirtualize_config(nfs.router())
        definitions = [
            line for line in result.source.splitlines()
            if line.startswith("class ") and ": public" in line
        ]
        assert len(definitions) == len(result.ast.declarations)

    def test_specialized_config_reparses(self):
        """The rewritten configuration is still valid Click syntax."""
        result = devirtualize_config(nfs.forwarder())
        text = result.specialized_config()
        reparsed = parse_config(
            # Re-declare the specialized names as plain identifiers: the
            # parser only checks structure, not the class registry.
            text
        )
        assert len(reparsed.connections) == len(result.ast.connections)

    def test_sink_elements_have_no_push_switch(self):
        result = devirtualize_config(nfs.forwarder())
        # ToDPDKDevice has no outputs; its specialized class has no push().
        tail = result.source.split("ToDPDKDevice_Specialized")[1]
        head = tail.split("};")[0]
        assert "switch" not in head
