"""Tests for the Packet object: buffers, headroom, annotations, header views."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addresses import IPv4Address, MacAddress
from repro.net.flows import PROTO_TCP, FlowSpec
from repro.net.packet import ANNO_DST_IP, ANNO_PAINT, ANNO_VLAN_TCI, Packet
from repro.net.trace import build_frame


def _sample_flow():
    return FlowSpec(
        src_ip=IPv4Address("10.0.0.1"),
        dst_ip=IPv4Address("192.168.0.1"),
        proto=PROTO_TCP,
        src_port=1234,
        dst_port=80,
    )


def _sample_packet(frame_len=128):
    pkt = Packet(build_frame(_sample_flow(), frame_len))
    pkt.mac_header_offset = 0
    pkt.network_header_offset = 14
    pkt.transport_header_offset = 34
    return pkt


class TestBufferManagement:
    def test_length_matches_data(self):
        pkt = _sample_packet(128)
        assert len(pkt) == 128
        assert len(pkt.data_bytes()) == 128

    def test_data_view_is_writable(self):
        pkt = _sample_packet()
        view = pkt.data()
        view[0] = 0xAB
        assert pkt.data_bytes()[0] == 0xAB

    def test_push_extends_into_headroom(self):
        pkt = _sample_packet(128)
        pkt.push(4)
        assert len(pkt) == 132
        assert pkt.headroom == 124

    def test_push_shifts_header_offsets(self):
        pkt = _sample_packet()
        pkt.push(4)
        assert pkt.mac_header_offset == 4
        assert pkt.network_header_offset == 18

    def test_pull_strips_front(self):
        pkt = _sample_packet(128)
        first_after = pkt.data_bytes()[14]
        pkt.pull(14)
        assert len(pkt) == 114
        assert pkt.data_bytes()[0] == first_after
        assert pkt.network_header_offset == 0

    def test_take_strips_tail(self):
        pkt = _sample_packet(128)
        pkt.take(10)
        assert len(pkt) == 118

    def test_push_overflow_raises(self):
        pkt = _sample_packet()
        with pytest.raises(ValueError):
            pkt.push(pkt.headroom + 1)

    def test_pull_overflow_raises(self):
        pkt = _sample_packet(64)
        with pytest.raises(ValueError):
            pkt.pull(65)

    def test_take_overflow_raises(self):
        pkt = _sample_packet(64)
        with pytest.raises(ValueError):
            pkt.take(65)

    @given(st.integers(min_value=0, max_value=64))
    def test_push_pull_roundtrip_property(self, n):
        pkt = _sample_packet(128)
        before = pkt.data_bytes()
        pkt.push(n)
        pkt.pull(n)
        assert pkt.data_bytes() == before


class TestAnnotations:
    def test_u8_roundtrip(self):
        pkt = _sample_packet()
        pkt.set_anno_u8(ANNO_PAINT, 7)
        assert pkt.anno_u8(ANNO_PAINT) == 7

    def test_u16_roundtrip(self):
        pkt = _sample_packet()
        pkt.set_anno_u16(ANNO_VLAN_TCI, 0x3064)
        assert pkt.anno_u16(ANNO_VLAN_TCI) == 0x3064

    def test_u32_roundtrip(self):
        pkt = _sample_packet()
        pkt.set_anno_u32(ANNO_DST_IP, 0xC0A80001)
        assert pkt.anno_u32(ANNO_DST_IP) == 0xC0A80001

    def test_values_are_masked(self):
        pkt = _sample_packet()
        pkt.set_anno_u8(0, 0x1FF)
        assert pkt.anno_u8(0) == 0xFF

    def test_annotations_do_not_overlap_when_adjacent(self):
        pkt = _sample_packet()
        pkt.set_anno_u16(0, 0xAAAA)
        pkt.set_anno_u16(2, 0xBBBB)
        assert pkt.anno_u16(0) == 0xAAAA
        assert pkt.anno_u16(2) == 0xBBBB

    def test_anno_area_is_48_bytes(self):
        assert len(_sample_packet().anno) == 48


class TestHeaderViews:
    def test_ether_view(self):
        pkt = _sample_packet()
        assert pkt.ether().ethertype == 0x0800
        assert pkt.ether().src == MacAddress("02:00:00:00:00:01")

    def test_ip_view(self):
        pkt = _sample_packet()
        ip = pkt.ip()
        assert ip.verify()
        assert ip.src == IPv4Address("10.0.0.1")

    def test_tcp_view(self):
        pkt = _sample_packet()
        assert pkt.tcp().dst_port == 80

    def test_header_view_without_offset_raises(self):
        pkt = Packet(build_frame(_sample_flow(), 64))
        with pytest.raises(ValueError):
            pkt.ip()

    def test_transport_available(self):
        pkt = _sample_packet(128)
        assert pkt.transport_available() == 128 - 34

    def test_views_share_buffer(self):
        pkt = _sample_packet()
        pkt.ether().swap_addresses()
        assert pkt.ether().dst == MacAddress("02:00:00:00:00:01")


class TestClone:
    def test_clone_copies_data(self):
        pkt = _sample_packet()
        pkt.set_anno_u8(ANNO_PAINT, 3)
        copy = pkt.clone()
        assert copy.data_bytes() == pkt.data_bytes()
        assert copy.anno_u8(ANNO_PAINT) == 3
        assert copy.network_header_offset == pkt.network_header_offset

    def test_clone_is_independent(self):
        pkt = _sample_packet()
        original_first = pkt.data_bytes()[0]
        copy = pkt.clone()
        copy.data()[0] = original_first ^ 0xFF
        copy.set_anno_u8(ANNO_PAINT, 9)
        assert pkt.data_bytes()[0] == original_first
        assert pkt.anno_u8(ANNO_PAINT) == 0
