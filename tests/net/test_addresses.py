"""Tests for MAC/IPv4 address value types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addresses import IPv4Address, MacAddress


class TestMacAddress:
    def test_from_string(self):
        mac = MacAddress("aa:bb:cc:dd:ee:ff")
        assert mac.packed == bytes.fromhex("aabbccddeeff")

    def test_from_string_dash_separated(self):
        assert MacAddress("aa-bb-cc-dd-ee-ff") == MacAddress("aa:bb:cc:dd:ee:ff")

    def test_from_bytes(self):
        mac = MacAddress(b"\x02\x00\x00\x00\x00\x01")
        assert str(mac) == "02:00:00:00:00:01"

    def test_from_int_roundtrip(self):
        mac = MacAddress(0x0200DEADBEEF)
        assert int(MacAddress(str(mac))) == 0x0200DEADBEEF

    def test_copy_constructor(self):
        mac = MacAddress("02:00:00:00:00:01")
        assert MacAddress(mac) == mac

    def test_broadcast(self):
        assert MacAddress.broadcast().is_broadcast()
        assert not MacAddress.zero().is_broadcast()

    def test_multicast_bit(self):
        assert MacAddress("01:00:5e:00:00:01").is_multicast()
        assert not MacAddress("02:00:00:00:00:01").is_multicast()

    def test_rejects_short_bytes(self):
        with pytest.raises(ValueError):
            MacAddress(b"\x00\x01")

    def test_rejects_bad_string(self):
        with pytest.raises(ValueError):
            MacAddress("not-a-mac")

    def test_rejects_out_of_range_int(self):
        with pytest.raises(ValueError):
            MacAddress(1 << 48)

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            MacAddress(3.14)

    def test_ordering_and_hash(self):
        a = MacAddress(1)
        b = MacAddress(2)
        assert a < b
        assert len({a, MacAddress(1), b}) == 2

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_string_roundtrip_property(self, value):
        assert int(MacAddress(str(MacAddress(value)))) == value


class TestIPv4Address:
    def test_from_string(self):
        ip = IPv4Address("192.168.1.1")
        assert ip.packed == bytes((192, 168, 1, 1))

    def test_from_int(self):
        assert str(IPv4Address(0xC0A80101)) == "192.168.1.1"

    def test_from_bytes(self):
        assert int(IPv4Address(bytes((10, 0, 0, 1)))) == 0x0A000001

    def test_copy_constructor(self):
        ip = IPv4Address("10.1.2.3")
        assert IPv4Address(ip) == ip

    def test_rejects_bad_octet(self):
        with pytest.raises(ValueError):
            IPv4Address("192.168.1.300")

    def test_rejects_wrong_part_count(self):
        with pytest.raises(ValueError):
            IPv4Address("1.2.3")

    def test_rejects_non_numeric(self):
        with pytest.raises(ValueError):
            IPv4Address("a.b.c.d")

    def test_rejects_short_bytes(self):
        with pytest.raises(ValueError):
            IPv4Address(b"\x01\x02")

    def test_prefix_membership(self):
        ip = IPv4Address("192.168.5.7")
        assert ip.in_prefix(IPv4Address("192.168.0.0"), 16)
        assert not ip.in_prefix(IPv4Address("192.169.0.0"), 16)

    def test_prefix_zero_matches_everything(self):
        assert IPv4Address("8.8.8.8").in_prefix(IPv4Address("0.0.0.0"), 0)

    def test_prefix_32_exact(self):
        ip = IPv4Address("10.0.0.1")
        assert ip.in_prefix(IPv4Address("10.0.0.1"), 32)
        assert not ip.in_prefix(IPv4Address("10.0.0.2"), 32)

    def test_prefix_length_validation(self):
        with pytest.raises(ValueError):
            IPv4Address("10.0.0.1").in_prefix(IPv4Address("10.0.0.0"), 33)

    def test_ordering(self):
        assert IPv4Address("10.0.0.1") < IPv4Address("10.0.0.2")

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_string_roundtrip_property(self, value):
        assert int(IPv4Address(str(IPv4Address(value)))) == value
