"""Tests for the RFC 1071/1624 checksum routines."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.checksum import (
    incremental_update,
    internet_checksum,
    ones_complement_sum,
    pseudo_header_sum,
    verify_checksum,
)


class TestInternetChecksum:
    def test_rfc1071_example(self):
        # Classic example from RFC 1071 §3.
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert ones_complement_sum(data) == 0xDDF2

    def test_empty_data(self):
        assert internet_checksum(b"") == 0xFFFF

    def test_odd_length_pads_with_zero(self):
        assert ones_complement_sum(b"\xab") == ones_complement_sum(b"\xab\x00")

    def test_verify_after_insert(self):
        data = bytearray(b"\x45\x00\x00\x14" + bytes(16))
        checksum = internet_checksum(bytes(data))
        data[10:12] = checksum.to_bytes(2, "big")
        assert verify_checksum(bytes(data))

    def test_verify_detects_corruption(self):
        data = bytearray(b"\x45\x00\x00\x14" + bytes(16))
        data[10:12] = internet_checksum(bytes(data)).to_bytes(2, "big")
        data[0] ^= 0xFF
        assert not verify_checksum(bytes(data))

    @given(st.binary(min_size=0, max_size=128))
    def test_checksummed_data_always_verifies(self, payload):
        if len(payload) % 2:  # checksum fields always sit on 16-bit boundaries
            payload += b"\x00"
        data = bytearray(payload) + bytearray(2)
        data[-2:] = internet_checksum(bytes(data)).to_bytes(2, "big")
        assert verify_checksum(bytes(data))


class TestIncrementalUpdate:
    def test_matches_full_recompute(self):
        data = bytearray(b"\x45\x00\x00\x28\x12\x34\x40\x00\x40\x06\x00\x00"
                         b"\x0a\x00\x00\x01\xc0\xa8\x00\x01")
        old_checksum = internet_checksum(bytes(data))
        # Change the TTL/proto word 0x4006 -> 0x3f06.
        updated = incremental_update(old_checksum, 0x4006, 0x3F06)
        data[8] = 0x3F
        assert updated == internet_checksum(bytes(data))

    def test_no_change_is_identity(self):
        assert incremental_update(0x1234, 0xABCD, 0xABCD) == 0x1234

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            incremental_update(0x10000, 0, 0)

    @given(
        st.binary(min_size=20, max_size=20),
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=0xFFFF),
    )
    def test_incremental_equals_recompute_property(self, raw, word_index, new_value):
        data = bytearray(raw)
        data[10:12] = b"\x00\x00"
        checksum = internet_checksum(bytes(data))
        if word_index == 5:  # skip the checksum field itself
            word_index = 4
        off = word_index * 2
        old_value = int.from_bytes(data[off : off + 2], "big")
        updated = incremental_update(checksum, old_value, new_value)
        data[off : off + 2] = new_value.to_bytes(2, "big")
        expected = internet_checksum(bytes(data))
        # One's-complement arithmetic has two representations of zero
        # (0x0000 and 0xFFFF); both denote the same checksum value.
        assert updated == expected or {updated, expected} == {0x0000, 0xFFFF}


class TestPseudoHeader:
    def test_known_value(self):
        total = pseudo_header_sum(bytes((10, 0, 0, 1)), bytes((10, 0, 0, 2)), 6, 20)
        assert 0 <= total <= 0xFFFF

    def test_symmetric_in_addresses(self):
        a = pseudo_header_sum(bytes((1, 2, 3, 4)), bytes((5, 6, 7, 8)), 17, 100)
        b = pseudo_header_sum(bytes((5, 6, 7, 8)), bytes((1, 2, 3, 4)), 17, 100)
        assert a == b
