"""Tests for the Toeplitz RSS hash, indirection table, and flow parsing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.rss import (
    MICROSOFT_RSS_KEY,
    IndirectionTable,
    RssConfig,
    ToeplitzKey,
    hash_frame,
    parse_flow,
    toeplitz_hash,
    toeplitz_v4,
)


def ip(dotted: str) -> int:
    a, b, c, d = (int(x) for x in dotted.split("."))
    return (a << 24) | (b << 16) | (c << 8) | d


#: The IPv4 verification suite from the Microsoft NDIS RSS specification:
#: (dst_ip:dst_port, src_ip:src_port) -> (hash with ports, IP-only hash).
NDIS_VECTORS = [
    (("161.142.100.80", 1766), ("66.9.149.187", 2794),
     0x51CCC178, 0x323E8FC2),
    (("65.69.140.83", 4739), ("199.92.111.2", 14230),
     0xC626B0EA, 0xD718262A),
    (("12.22.207.184", 38024), ("24.19.198.95", 12898),
     0x5C2B394A, 0xD2D0A5DE),
    (("209.142.163.6", 2217), ("38.27.205.30", 48228),
     0xAFC7327F, 0x82989176),
    (("202.188.127.2", 1303), ("153.39.163.191", 44251),
     0x10E828A2, 0x5D1809C5),
]


class TestMicrosoftVectors:
    @pytest.mark.parametrize("dst,src,with_ports,ip_only", NDIS_VECTORS)
    def test_tcp_hash_matches_spec(self, dst, src, with_ports, ip_only):
        (dst_ip, dst_port), (src_ip, src_port) = dst, src
        assert toeplitz_v4(ip(src_ip), ip(dst_ip), 6,
                           src_port, dst_port) == with_ports

    @pytest.mark.parametrize("dst,src,with_ports,ip_only", NDIS_VECTORS)
    def test_ip_only_hash_matches_spec(self, dst, src, with_ports, ip_only):
        (dst_ip, _), (src_ip, _) = dst, src
        # A non-TCP/UDP protocol falls back to the 8-byte input.
        assert toeplitz_v4(ip(src_ip), ip(dst_ip), 1, 0, 0) == ip_only

    def test_udp_hashes_with_ports_like_tcp(self):
        (dst_ip, dst_port), (src_ip, src_port) = NDIS_VECTORS[0][:2]
        assert toeplitz_v4(ip(src_ip), ip(dst_ip), 17, src_port, dst_port) \
            == NDIS_VECTORS[0][2]


class TestToeplitzProperties:
    def test_byte_tables_match_bitwise_definition(self):
        # Reference implementation: XOR the sliding 32-bit key window for
        # every set bit of the input.
        data = bytes(range(1, 13))
        key_int = int.from_bytes(MICROSOFT_RSS_KEY, "big")
        key_bits = 8 * len(MICROSOFT_RSS_KEY)
        expected = 0
        for bit_index in range(8 * len(data)):
            if data[bit_index // 8] & (0x80 >> (bit_index % 8)):
                expected ^= (key_int >> (key_bits - 32 - bit_index)) & 0xFFFFFFFF
        assert toeplitz_hash(data) == expected

    @settings(max_examples=50, deadline=None)
    @given(src=st.integers(0, 2**32 - 1), dst=st.integers(0, 2**32 - 1),
           sport=st.integers(0, 65535), dport=st.integers(0, 65535))
    def test_deterministic(self, src, dst, sport, dport):
        a = toeplitz_v4(src, dst, 6, sport, dport)
        assert a == toeplitz_v4(src, dst, 6, sport, dport)
        assert 0 <= a <= 0xFFFFFFFF

    @settings(max_examples=30, deadline=None)
    @given(src=st.integers(0, 2**32 - 1), dst=st.integers(0, 2**32 - 1),
           sport=st.integers(0, 65535), dport=st.integers(0, 65535))
    def test_direction_sensitive_input(self, src, dst, sport, dport):
        # The hash is a pure function of the concatenated input bytes, so
        # any tuple change that changes the bytes may change the hash; at
        # minimum the ported and IP-only inputs must be independent
        # functions (ICMP ignores ports entirely).
        assert toeplitz_v4(src, dst, 1, sport, dport) == \
            toeplitz_v4(src, dst, 1, 0, 0)

    def test_rejects_short_key(self):
        with pytest.raises(ValueError):
            ToeplitzKey(b"short", max_input=12)

    def test_rejects_oversized_input(self):
        with pytest.raises(ValueError):
            ToeplitzKey(MICROSOFT_RSS_KEY, max_input=8).hash_bytes(bytes(12))


class TestDistribution:
    def test_spreads_across_queues(self):
        """Chi-square-ish bound: uniform flows land near 1/N per queue."""
        n_queues = 4
        table = IndirectionTable(n_queues)
        hashes = [
            toeplitz_v4(ip("10.0.0.1") + i, ip("192.168.0.1") + (i * 7) % 251,
                        6, 1024 + i % 5000, 80)
            for i in range(8000)
        ]
        counts = table.histogram(hashes)
        assert sum(counts) == 8000
        fair = 8000 / n_queues
        for queue, count in enumerate(counts):
            assert abs(count - fair) / fair < 0.10, \
                "queue %d got %d of %d" % (queue, count, 8000)

    def test_flow_affinity(self):
        """Every packet of one flow lands on the same queue."""
        table = IndirectionTable(8)
        h = toeplitz_v4(ip("10.1.2.3"), ip("192.168.9.9"), 6, 5555, 80)
        assert len({table.queue_for(h) for _ in range(100)}) == 1


class TestIndirectionTable:
    def test_round_robin_init(self):
        table = IndirectionTable(4, size=8)
        assert table.entries == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_retarget(self):
        table = IndirectionTable(4, size=8)
        table.retarget(0, 3)
        assert table.entries[0] == 3
        with pytest.raises(ValueError):
            table.retarget(0, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            IndirectionTable(0)
        with pytest.raises(ValueError):
            IndirectionTable(8, size=4)


#: (queue count, table size) pairs with size >= n_queues, as the table
#: requires; sizes stay small so shrinking is fast.
_tables = st.integers(1, 8).flatmap(
    lambda n: st.tuples(st.just(n), st.integers(n, 64)))


def _retargets(n_queues, size):
    return st.lists(
        st.tuples(st.integers(0, size - 1), st.integers(0, n_queues - 1)),
        max_size=32)


class TestRetargetProperties:
    """Invariants of the RETA under arbitrary retarget sequences."""

    @settings(max_examples=60, deadline=None)
    @given(shape=_tables, data=st.data())
    def test_retarget_preserves_size_and_queue_range(self, shape, data):
        n_queues, size = shape
        table = IndirectionTable(n_queues, size=size)
        for index, queue in data.draw(_retargets(n_queues, size)):
            table.retarget(index, queue)
        assert len(table.entries) == size
        assert all(0 <= q < n_queues for q in table.entries)
        assert sum(table.spread()) == size

    @settings(max_examples=60, deadline=None)
    @given(shape=_tables, data=st.data(),
           hashes=st.lists(st.integers(0, 2**32 - 1), max_size=64))
    def test_histogram_sums_to_input_length(self, shape, data, hashes):
        n_queues, size = shape
        table = IndirectionTable(n_queues, size=size)
        for index, queue in data.draw(_retargets(n_queues, size)):
            table.retarget(index, queue)
        counts = table.histogram(hashes)
        assert sum(counts) == len(hashes)
        assert len(counts) == n_queues

    @settings(max_examples=60, deadline=None)
    @given(shape=_tables, data=st.data(),
           rss_hash=st.integers(0, 2**32 - 1))
    def test_queue_for_consistent_after_retargets(self, shape, data,
                                                  rss_hash):
        n_queues, size = shape
        table = IndirectionTable(n_queues, size=size)
        for index, queue in data.draw(_retargets(n_queues, size)):
            table.retarget(index, queue)
        queue = table.queue_for(rss_hash)
        # queue_for is the entry the hash indexes, is stable, and agrees
        # with the ownership view (buckets_for_queue).
        assert queue == table.entries[rss_hash % size]
        assert queue == table.queue_for(rss_hash)
        assert rss_hash % size in table.buckets_for_queue(queue)

    @settings(max_examples=60, deadline=None)
    @given(shape=_tables, data=st.data())
    def test_batch_equals_sequential_retargets(self, shape, data):
        n_queues, size = shape
        moves = data.draw(_retargets(n_queues, size))
        batch = IndirectionTable(n_queues, size=size)
        seq = IndirectionTable(n_queues, size=size)
        assert batch.retarget_batch(moves) == len(moves)
        for index, queue in moves:
            seq.retarget(index, queue)
        assert batch.entries == seq.entries

    @settings(max_examples=40, deadline=None)
    @given(shape=_tables, data=st.data())
    def test_bad_batch_is_atomic(self, shape, data):
        n_queues, size = shape
        moves = data.draw(_retargets(n_queues, size))
        table = IndirectionTable(n_queues, size=size)
        before = list(table.entries)
        with pytest.raises(ValueError):
            table.retarget_batch(moves + [(0, n_queues)])
        assert table.entries == before


class TestRssConfig:
    def test_defaults_are_valid_and_hashable(self):
        config = RssConfig()
        assert hash(config) == hash(RssConfig())
        assert config.key == MICROSOFT_RSS_KEY

    @pytest.mark.parametrize("kwargs", [
        {"key": b"tiny"},
        {"table_size": 0},
        {"mempool": "bogus"},
        {"backlog_cap": 0},
        {"ingest_budget": 0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            RssConfig(**kwargs)


class TestParseFlow:
    def _frame(self, proto=6, vlan=False):
        eth = bytes(12)
        ip_hdr = bytes([0x45, 0, 0, 40, 0, 0, 0, 0, 64, proto, 0, 0])
        ip_hdr += ip("10.0.0.1").to_bytes(4, "big")
        ip_hdr += ip("192.168.0.2").to_bytes(4, "big")
        l4 = (1234).to_bytes(2, "big") + (80).to_bytes(2, "big") + bytes(16)
        if vlan:
            return eth + b"\x81\x00\x00\x01\x08\x00" + ip_hdr + l4
        return eth + b"\x08\x00" + ip_hdr + l4

    def test_parses_tcp_tuple(self):
        tup = parse_flow(self._frame())
        assert tup == (ip("10.0.0.1"), ip("192.168.0.2"), 6, 1234, 80)

    def test_parses_vlan_tagged(self):
        assert parse_flow(self._frame(vlan=True)) == \
            (ip("10.0.0.1"), ip("192.168.0.2"), 6, 1234, 80)

    def test_icmp_has_no_ports(self):
        tup = parse_flow(self._frame(proto=1))
        assert tup == (ip("10.0.0.1"), ip("192.168.0.2"), 1, 0, 0)

    def test_non_ip_and_runt_frames(self):
        assert parse_flow(bytes(12) + b"\x86\xdd" + bytes(40)) is None
        assert parse_flow(bytes(10)) is None
        assert hash_frame(bytes(10)) == 0

    def test_hash_frame_matches_tuple_hash(self):
        frame = self._frame()
        assert hash_frame(frame) == \
            toeplitz_v4(ip("10.0.0.1"), ip("192.168.0.2"), 6, 1234, 80)
