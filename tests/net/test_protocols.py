"""Tests for the protocol header codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addresses import IPv4Address, MacAddress
from repro.net.checksum import internet_checksum, verify_checksum
from repro.net.protocols import (
    ArpHeader,
    EtherHeader,
    IcmpHeader,
    Ipv4Header,
    TcpHeader,
    UdpHeader,
    VlanHeader,
)

SRC_MAC = MacAddress("02:00:00:00:00:01")
DST_MAC = MacAddress("02:00:00:00:00:02")
SRC_IP = IPv4Address("10.0.0.1")
DST_IP = IPv4Address("192.168.0.1")


class TestEtherHeader:
    def test_build_and_parse(self):
        raw = bytearray(EtherHeader.build(DST_MAC, SRC_MAC, 0x0800))
        hdr = EtherHeader(raw)
        assert hdr.dst == DST_MAC
        assert hdr.src == SRC_MAC
        assert hdr.ethertype == 0x0800

    def test_swap_addresses(self):
        raw = bytearray(EtherHeader.build(DST_MAC, SRC_MAC, 0x0800))
        hdr = EtherHeader(raw)
        hdr.swap_addresses()
        assert hdr.dst == SRC_MAC
        assert hdr.src == DST_MAC

    def test_swap_is_involution(self):
        raw = bytearray(EtherHeader.build(DST_MAC, SRC_MAC, 0x0800))
        original = bytes(raw)
        hdr = EtherHeader(raw)
        hdr.swap_addresses()
        hdr.swap_addresses()
        assert bytes(raw) == original

    def test_setters(self):
        raw = bytearray(EtherHeader.build(DST_MAC, SRC_MAC, 0x0800))
        hdr = EtherHeader(raw)
        hdr.dst = MacAddress("ff:ff:ff:ff:ff:ff")
        hdr.ethertype = 0x0806
        assert hdr.dst.is_broadcast()
        assert hdr.ethertype == 0x0806

    def test_rejects_short_buffer(self):
        with pytest.raises(ValueError):
            EtherHeader(bytearray(10))

    def test_offset_view(self):
        raw = bytearray(4) + bytearray(EtherHeader.build(DST_MAC, SRC_MAC, 0x0800))
        assert EtherHeader(raw, offset=4).ethertype == 0x0800


class TestVlanHeader:
    def test_build_and_parse(self):
        raw = bytearray(VlanHeader.build(vlan_id=100, inner_ethertype=0x0800, pcp=3))
        hdr = VlanHeader(raw, 0)
        assert hdr.vlan_id == 100
        assert hdr.pcp == 3
        assert hdr.inner_ethertype == 0x0800

    def test_vlan_id_setter_preserves_pcp(self):
        raw = bytearray(VlanHeader.build(vlan_id=1, inner_ethertype=0x0800, pcp=5))
        hdr = VlanHeader(raw, 0)
        hdr.vlan_id = 4000
        assert hdr.vlan_id == 4000
        assert hdr.pcp == 5

    def test_rejects_bad_vlan_id(self):
        with pytest.raises(ValueError):
            VlanHeader.build(vlan_id=5000, inner_ethertype=0x0800)

    def test_rejects_bad_pcp(self):
        with pytest.raises(ValueError):
            VlanHeader.build(vlan_id=1, inner_ethertype=0x0800, pcp=9)


class TestArpHeader:
    def test_build_request(self):
        raw = bytearray(
            ArpHeader.build(ArpHeader.OP_REQUEST, SRC_MAC, SRC_IP, MacAddress.zero(), DST_IP)
        )
        hdr = ArpHeader(raw, 0)
        assert hdr.is_valid()
        assert hdr.op == ArpHeader.OP_REQUEST
        assert hdr.sender_ip == SRC_IP
        assert hdr.target_ip == DST_IP

    def test_reply_rewrite(self):
        raw = bytearray(
            ArpHeader.build(ArpHeader.OP_REQUEST, SRC_MAC, SRC_IP, MacAddress.zero(), DST_IP)
        )
        hdr = ArpHeader(raw, 0)
        hdr.op = ArpHeader.OP_REPLY
        hdr.target_mac = SRC_MAC
        hdr.target_ip = SRC_IP
        hdr.sender_mac = DST_MAC
        hdr.sender_ip = DST_IP
        assert hdr.op == ArpHeader.OP_REPLY
        assert hdr.sender_mac == DST_MAC
        assert hdr.target_ip == SRC_IP

    def test_invalid_when_corrupted(self):
        raw = bytearray(
            ArpHeader.build(ArpHeader.OP_REQUEST, SRC_MAC, SRC_IP, MacAddress.zero(), DST_IP)
        )
        raw[0] = 9
        assert not ArpHeader(raw, 0).is_valid()


class TestIpv4Header:
    def _header(self, **kwargs):
        raw = bytearray(Ipv4Header.build(SRC_IP, DST_IP, 6, 20, **kwargs))
        return Ipv4Header(raw, 0), raw

    def test_build_produces_valid_checksum(self):
        hdr, _ = self._header()
        assert hdr.verify()

    def test_field_parse(self):
        hdr, _ = self._header(ttl=17, ident=0x1234)
        assert hdr.version == 4
        assert hdr.ihl == 5
        assert hdr.header_len == 20
        assert hdr.total_len == 40
        assert hdr.ident == 0x1234
        assert hdr.ttl == 17
        assert hdr.proto == 6
        assert hdr.src == SRC_IP
        assert hdr.dst == DST_IP

    def test_decrement_ttl_keeps_checksum_valid(self):
        hdr, _ = self._header(ttl=64)
        new_ttl = hdr.decrement_ttl()
        assert new_ttl == 63
        assert hdr.verify()

    def test_decrement_to_zero(self):
        hdr, _ = self._header(ttl=1)
        assert hdr.decrement_ttl() == 0
        assert hdr.verify()

    def test_address_rewrite_keeps_checksum_valid(self):
        hdr, _ = self._header()
        hdr.src = IPv4Address("172.16.0.9")
        assert hdr.src == IPv4Address("172.16.0.9")
        assert hdr.verify()
        hdr.dst = IPv4Address("8.8.8.8")
        assert hdr.verify()

    def test_verify_rejects_bad_version(self):
        _, raw = self._header()
        raw[0] = (6 << 4) | 5
        assert not Ipv4Header(raw, 0).verify()

    def test_verify_rejects_corrupt_checksum(self):
        hdr, raw = self._header()
        raw[10] ^= 0x55
        assert not hdr.verify()

    def test_recompute_checksum(self):
        hdr, raw = self._header()
        raw[8] = 10  # raw TTL edit without incremental fix
        assert not hdr.verify()
        hdr.recompute_checksum()
        assert hdr.verify()

    @given(st.integers(min_value=2, max_value=255))
    def test_ttl_chain_property(self, ttl):
        """Decrementing TTL repeatedly always keeps the checksum valid."""
        raw = bytearray(Ipv4Header.build(SRC_IP, DST_IP, 17, 8, ttl=ttl))
        hdr = Ipv4Header(raw, 0)
        while hdr.ttl > 0:
            hdr.decrement_ttl()
            assert hdr.verify()


class TestTcpHeader:
    def test_build_and_parse(self):
        raw = bytearray(TcpHeader.build(1234, 80, seq=7, ack=9, flags=TcpHeader.SYN))
        hdr = TcpHeader(raw, 0)
        assert hdr.src_port == 1234
        assert hdr.dst_port == 80
        assert hdr.seq == 7
        assert hdr.ack_num == 9
        assert hdr.flags == TcpHeader.SYN
        assert hdr.header_len == 20

    def test_port_rewrite_updates_checksum_incrementally(self):
        raw = bytearray(TcpHeader.build(1234, 80))
        hdr = TcpHeader(raw, 0)
        hdr.checksum = internet_checksum(bytes(raw))
        before = bytes(raw)
        assert verify_checksum(before)
        hdr.src_port = 4321
        assert hdr.src_port == 4321
        assert verify_checksum(bytes(raw))

    def test_structure_check(self):
        raw = bytearray(TcpHeader.build(1, 2))
        hdr = TcpHeader(raw, 0)
        assert hdr.verify_structure(available=20)
        assert not hdr.verify_structure(available=12)

    def test_structure_check_rejects_tiny_offset(self):
        raw = bytearray(TcpHeader.build(1, 2))
        raw[12] = 2 << 4
        assert not TcpHeader(raw, 0).verify_structure(available=60)


class TestUdpHeader:
    def test_build_and_parse(self):
        raw = bytearray(UdpHeader.build(53, 5353, payload_len=100))
        hdr = UdpHeader(raw, 0)
        assert hdr.src_port == 53
        assert hdr.dst_port == 5353
        assert hdr.length == 108

    def test_port_rewrite_with_zero_checksum(self):
        raw = bytearray(UdpHeader.build(53, 5353, payload_len=0))
        hdr = UdpHeader(raw, 0)
        hdr.dst_port = 9999  # zero checksum stays zero
        assert hdr.dst_port == 9999
        assert hdr.checksum == 0

    def test_structure_check(self):
        raw = bytearray(UdpHeader.build(1, 2, payload_len=4))
        hdr = UdpHeader(raw, 0)
        assert hdr.verify_structure(available=12)
        assert not hdr.verify_structure(available=8)


class TestIcmpHeader:
    def test_build_echo_request(self):
        raw = bytearray(IcmpHeader.build(IcmpHeader.ECHO_REQUEST, ident=5, seq=1))
        hdr = IcmpHeader(raw, 0)
        assert hdr.icmp_type == IcmpHeader.ECHO_REQUEST
        assert hdr.ident == 5
        assert hdr.seq == 1
        assert hdr.verify(payload_len=0)

    def test_checksum_covers_payload(self):
        payload = b"abcdefgh"
        raw = bytearray(IcmpHeader.build(IcmpHeader.ECHO_REQUEST, payload=payload) + payload)
        assert IcmpHeader(raw, 0).verify(payload_len=len(payload))

    def test_structure_check_rejects_unknown_type(self):
        raw = bytearray(IcmpHeader.build(IcmpHeader.ECHO_REQUEST))
        raw[0] = 200
        assert not IcmpHeader(raw, 0).verify_structure(available=8)
