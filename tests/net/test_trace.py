"""Tests for trace generators and flow sets."""

import random

import pytest

from repro.net.flows import PROTO_ICMP, PROTO_TCP, PROTO_UDP, FlowSet, FlowSpec
from repro.net.addresses import IPv4Address
from repro.net.packet import ANNO_SEQUENCE
from repro.net.trace import (
    CampusTraceGenerator,
    FixedSizeTraceGenerator,
    TraceSpec,
    build_frame,
)


class TestBuildFrame:
    def _flow(self, proto=PROTO_TCP):
        return FlowSpec(
            src_ip=IPv4Address("10.0.0.1"),
            dst_ip=IPv4Address("192.168.0.1"),
            proto=proto,
            src_port=1000,
            dst_port=80,
        )

    @pytest.mark.parametrize("size", [64, 128, 576, 1024, 1514])
    def test_exact_length(self, size):
        assert len(build_frame(self._flow(), size)) == size

    @pytest.mark.parametrize("proto", [PROTO_TCP, PROTO_UDP, PROTO_ICMP])
    def test_all_protocols(self, proto):
        frame = build_frame(self._flow(proto), 128)
        assert frame[23] == proto  # IPv4 protocol field

    def test_ip_header_is_valid(self):
        from repro.net.protocols import Ipv4Header

        frame = bytearray(build_frame(self._flow(), 128))
        assert Ipv4Header(frame, 14).verify()

    def test_rejects_runt(self):
        with pytest.raises(ValueError):
            build_frame(self._flow(), 32)

    def test_ttl_parameter(self):
        frame = build_frame(self._flow(), 64, ttl=7)
        assert frame[22] == 7


class TestFlowSet:
    def test_deterministic_for_seed(self):
        a = FlowSet(64, random.Random(1))
        b = FlowSet(64, random.Random(1))
        assert list(a) == list(b)

    def test_count(self):
        assert len(FlowSet(17, random.Random(0))) == 17

    def test_rejects_zero_flows(self):
        with pytest.raises(ValueError):
            FlowSet(0, random.Random(0))

    def test_zipf_concentration(self):
        """Top-10% flows should carry well over 10% of picks."""
        flows = FlowSet(100, random.Random(3))
        top = set(flows[i] for i in range(10))
        hits = sum(1 for _ in range(5000) if flows.pick() in top)
        assert hits > 1500

    def test_icmp_flows_have_no_ports(self):
        flows = FlowSet(
            200, random.Random(5), proto_mix=((PROTO_ICMP, 1.0),)
        )
        assert all(f.src_port == 0 and f.dst_port == 0 for f in flows)

    def test_reversed_flow(self):
        flow = FlowSet(1, random.Random(1))[0]
        rev = flow.reversed()
        assert rev.src_ip == flow.dst_ip
        assert rev.dst_port == flow.src_port
        assert rev.reversed() == flow

    def test_rss_hash_is_deterministic(self):
        flow = FlowSet(1, random.Random(2))[0]
        assert flow.rss_hash() == flow.rss_hash()

    def test_rss_hash_spreads(self):
        flows = FlowSet(256, random.Random(7))
        buckets = {f.rss_hash() % 4 for f in flows}
        assert buckets == {0, 1, 2, 3}


class TestFixedSizeTrace:
    def test_all_frames_have_requested_size(self):
        gen = FixedSizeTraceGenerator(256, TraceSpec(pool_size=64))
        assert all(len(p) == 256 for p in gen.packets(100))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            FixedSizeTraceGenerator(32)
        with pytest.raises(ValueError):
            FixedSizeTraceGenerator(9000)

    def test_sequence_annotation_increments(self):
        gen = FixedSizeTraceGenerator(64, TraceSpec(pool_size=8))
        seqs = [p.anno_u32(ANNO_SEQUENCE) for p in gen.packets(5)]
        assert seqs == [0, 1, 2, 3, 4]

    def test_cbr_timestamps(self):
        gen = FixedSizeTraceGenerator(64, TraceSpec(pool_size=8))
        pkts = list(gen.packets(4, rate_pps=1e6))
        gaps = [pkts[i + 1].timestamp - pkts[i].timestamp for i in range(3)]
        assert all(abs(g - 1e-6) < 1e-12 for g in gaps)

    def test_pool_cycles(self):
        gen = FixedSizeTraceGenerator(64, TraceSpec(pool_size=4))
        frames = [p.data_bytes() for p in gen.packets(8)]
        assert frames[:4] == frames[4:]

    def test_deterministic_across_instances(self):
        spec = TraceSpec(seed=11, pool_size=16)
        a = [p.data_bytes() for p in FixedSizeTraceGenerator(128, spec).packets(16)]
        b = [p.data_bytes() for p in FixedSizeTraceGenerator(128, spec).packets(16)]
        assert a == b

    def test_rss_hash_attached(self):
        gen = FixedSizeTraceGenerator(64, TraceSpec(pool_size=32, n_flows=32))
        hashes = {p.rss_hash for p in gen.packets(32)}
        assert len(hashes) > 1


class TestCampusTrace:
    def test_mean_size_near_981(self):
        gen = CampusTraceGenerator(TraceSpec(pool_size=4096))
        mean = gen.mean_frame_length()
        assert 920 <= mean <= 1040, "campus trace mean %.1f drifted from 981" % mean

    def test_analytic_mean_near_981(self):
        assert 940 <= CampusTraceGenerator.expected_mean() <= 1020

    def test_sizes_are_bimodal(self):
        gen = CampusTraceGenerator(TraceSpec(pool_size=2048))
        sizes = [len(p) for p in gen.packets(2048)]
        small = sum(1 for s in sizes if s < 128)
        large = sum(1 for s in sizes if s >= 1400)
        assert small > 200
        assert large > 800

    def test_sizes_within_ethernet_limits(self):
        gen = CampusTraceGenerator(TraceSpec(pool_size=512))
        assert all(64 <= len(p) <= 1514 for p in gen.packets(512))

    def test_protocol_mix_mostly_tcp(self):
        gen = CampusTraceGenerator(TraceSpec(pool_size=1024))
        tcp = sum(1 for p in gen.packets(1024) if p.data_bytes()[23] == PROTO_TCP)
        assert tcp > 700


class TestSkewedTrace:
    def _gen(self, **kwargs):
        from repro.net.trace import SkewedTraceGenerator

        defaults = dict(n_flows=100_000, seed=9)
        defaults.update(kwargs)
        return SkewedTraceGenerator(**defaults)

    def test_flow_at_is_pure_in_seed_and_rank(self):
        a, b = self._gen(), self._gen()
        for rank in (0, 1, 57, 99_999):
            assert a.flow_at(rank) == b.flow_at(rank)
        assert self._gen(seed=10).flow_at(0) != a.flow_at(0)

    def test_million_flow_population_is_lazy(self):
        gen = self._gen(n_flows=1_000_000)
        assert len(gen.flows) == 1_000_000
        flow = gen.flows[123_456]
        assert flow == gen.flow_at(123_456)

    def test_uniform_spreads_flows(self):
        gen = self._gen(n_flows=1000)
        seen = {gen.next_packet().rss_hash for _ in range(2000)}
        assert len(seen) > 500

    def test_zipf_concentrates_on_elephants(self):
        gen = self._gen(n_flows=1000, zipf_s=1.6)
        from collections import Counter
        counts = Counter(gen.next_packet().rss_hash for _ in range(4000))
        top = counts.most_common(1)[0][1]
        assert top > 4000 * 0.25, "top flow only %d of 4000" % top

    def test_sequence_and_hash_annotations(self):
        gen = self._gen(n_flows=100)
        first = gen.next_packet()
        second = gen.next_packet()
        assert second.anno_u32(ANNO_SEQUENCE) == first.anno_u32(ANNO_SEQUENCE) + 1
        assert first.rss_hash is not None

    def test_destinations_stay_inside_192_168(self):
        gen = self._gen(n_flows=50_000)
        for rank in range(0, 50_000, 997):
            dst = gen.flow_at(rank).dst_ip.value
            assert (dst >> 16) == (192 << 8) | 168

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            self._gen(n_flows=0)
        with pytest.raises(ValueError):
            self._gen(zipf_s=-1.0)


class TestElephantShift:
    """Mid-run elephant-set rotation (shift_at / shift_offset)."""

    def _gen(self, **kwargs):
        from repro.net.trace import SkewedTraceGenerator

        defaults = dict(n_flows=1000, zipf_s=1.6, seed=9)
        defaults.update(kwargs)
        return SkewedTraceGenerator(**defaults)

    def test_stationary_by_default(self):
        gen = self._gen()
        assert gen.shift_at is None
        assert gen.shift_offset == 0

    def test_shift_rotates_the_hot_set(self):
        from collections import Counter

        gen = self._gen(shift_at=2000)
        before = Counter(gen.next_packet().rss_hash for _ in range(2000))
        after = Counter(gen.next_packet().rss_hash for _ in range(2000))
        top_before = before.most_common(1)[0][0]
        top_after = after.most_common(1)[0][0]
        # The elephant changes identity but not weight.
        assert top_before != top_after
        assert after[top_after] > 2000 * 0.25

    def test_shifted_stream_is_deterministic(self):
        a = self._gen(shift_at=500)
        b = self._gen(shift_at=500)
        for _ in range(1500):
            assert a.next_packet().rss_hash == b.next_packet().rss_hash

    def test_prefix_matches_stationary_stream(self):
        shifted = self._gen(shift_at=300)
        stationary = self._gen()
        for _ in range(300):
            assert shifted.next_packet().rss_hash == \
                stationary.next_packet().rss_hash
        # The first rotation diverges the streams.
        diverged = any(
            shifted.next_packet().rss_hash != stationary.next_packet().rss_hash
            for _ in range(300))
        assert diverged

    def test_default_offset_is_half_the_population(self):
        gen = self._gen(n_flows=1000, shift_at=100)
        assert gen.shift_offset == 500
        assert self._gen(shift_at=100, shift_offset=7).shift_offset == 7

    def test_rejects_bad_shift_args(self):
        import pytest

        with pytest.raises(ValueError):
            self._gen(shift_at=0)
        with pytest.raises(ValueError):
            self._gen(shift_offset=5)
