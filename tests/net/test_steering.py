"""Tests for adaptive flow steering: policy, NIC hooks, the rebalancer."""

import pytest

from repro.dpdk.nic import MultiQueueNic
from repro.net.rss import IndirectionTable, RssConfig
from repro.net.steering import RetaRebalancer, ShardSteering, SteeringPolicy
from repro.net.trace import FiniteTrace, SkewedTraceGenerator
from repro.telemetry.registry import CounterRegistry


def drain(mq):
    """Pull every queue until the port trace is fully consumed."""
    delivered = 0
    live = set(range(mq.n_queues))
    while live:
        for q in list(live):
            try:
                pkt = mq.pull(q)
            except StopIteration:
                live.discard(q)
                continue
            if pkt is not None:
                delivered += 1
    return delivered


def skewed_mq(n_packets=600, zipf_s=1.4, backlog_cap=8, n_queues=4, seed=7):
    trace = FiniteTrace(
        SkewedTraceGenerator(n_flows=200, zipf_s=zipf_s, seed=seed),
        n_packets)
    return MultiQueueNic(trace, n_queues,
                         RssConfig(backlog_cap=backlog_cap))


class TestSteeringPolicy:
    def test_defaults_are_valid_and_hashable(self):
        policy = SteeringPolicy()
        assert hash(policy) == hash(SteeringPolicy())
        assert not policy.dispatch

    @pytest.mark.parametrize("kwargs", [
        {"interval": 0},
        {"trigger": 0.9},
        {"settle": 0.99},
        {"settle": 2.0},  # above trigger
        {"hysteresis": 0},
        {"cooldown": -1},
        {"max_moves": 0},
        {"move_cost": -1.0},
        {"reorder_cost": -0.1},
        {"min_window": 0},
        {"occupancy_weight": -1.0},
        {"dispatch_share": 0.0},
        {"dispatch_share": 1.5},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            SteeringPolicy(**kwargs)

    def test_rss_config_carries_a_policy(self):
        config = RssConfig(steering=SteeringPolicy(dispatch=True))
        assert config.steering.dispatch
        with pytest.raises(ValueError):
            RssConfig(steering="not a policy")


class TestNicSteeringHooks:
    def test_occupancy_gauges_track_backlogs(self):
        mq = skewed_mq(backlog_cap=64)
        mq.pull(0)  # ingest a budget's worth of arrivals
        for q in range(mq.n_queues):
            assert mq.registry.get("q%d.occupancy" % q) == \
                len(mq.backlogs[q])
        drain(mq)
        for q in range(mq.n_queues):
            assert mq.registry.get("q%d.occupancy" % q) == 0

    def test_bucket_stats_are_lazy(self):
        mq = skewed_mq()
        assert not mq.bucket_stats_enabled
        assert mq.bucket_counts() is None
        assert "bucket0" not in mq.registry
        assert "dispatched" not in mq.registry
        mq.enable_bucket_stats()
        mq.enable_bucket_stats()  # idempotent
        assert mq.bucket_stats_enabled
        assert "bucket0" in mq.registry
        assert "reta_moves" in mq.registry

    def test_bucket_accounting_sums_to_ingested(self):
        mq = skewed_mq(backlog_cap=4)  # tight cap: some frames drop
        mq.enable_bucket_stats()
        delivered = drain(mq)
        counts = mq.bucket_counts()
        assert sum(counts) == mq.ingested
        assert delivered == mq.steered()
        assert mq.steered() + mq.dropped() == mq.ingested
        assert mq.dropped() > 0

    def test_retarget_bucket_counts_staged_frames(self):
        mq = skewed_mq(backlog_cap=512)
        mq.enable_bucket_stats()
        mq.pull(0)  # stage a budget's worth
        size = len(mq.table.entries)
        # Find a bucket with frames staged on its owning queue.
        bucket = next(
            b for b in range(size)
            if any(p.rss_hash % size == b
                   for p in mq.backlogs[mq.table.entries[b]]))
        old = mq.table.entries[bucket]
        expected = sum(1 for p in mq.backlogs[old]
                       if p.rss_hash % size == bucket)
        target = (old + 1) % mq.n_queues
        assert mq.retarget_bucket(bucket, target) == expected
        assert mq.table.entries[bucket] == target
        assert mq.registry.get("reta_moves") == 1
        assert mq.registry.get("migration_drains") == expected
        # Retargeting to the current owner is a free no-op.
        assert mq.retarget_bucket(bucket, target) == 0
        assert mq.registry.get("reta_moves") == 1

    def test_conservation_closes_across_migrations(self):
        mq = skewed_mq(n_packets=900, backlog_cap=16)
        mq.enable_bucket_stats()
        # Interleave pulls with RETA rewrites of the hottest bucket.
        moved = 0
        live = set(range(mq.n_queues))
        while live:
            for q in list(live):
                try:
                    mq.pull(q)
                except StopIteration:
                    live.discard(q)
            counts = mq.bucket_counts()
            hot = max(range(len(counts)), key=counts.__getitem__)
            moved += 1
            mq.retarget_bucket(hot, moved % mq.n_queues)
        assert sum(mq.bucket_counts()) == mq.ingested
        assert mq.steered() + mq.dropped() == mq.ingested

    def test_dispatch_sprays_round_robin(self):
        mq = skewed_mq()
        gen = SkewedTraceGenerator(n_flows=10, seed=3)
        pkt = gen.next_packet()
        mq.steer(pkt)  # computes and caches the hash
        bucket = pkt.rss_hash % len(mq.table.entries)
        mq.enable_dispatch(bucket)
        queues = [mq.steer(pkt) for _ in range(2 * mq.n_queues)]
        assert queues == list(range(mq.n_queues)) * 2
        assert mq.registry.get("dispatched") == 2 * mq.n_queues
        mq.retire_dispatch(bucket)
        assert mq.steer(pkt) == mq.table.entries[bucket]
        assert mq.registry.get("dispatched") == 2 * mq.n_queues


class FakeMq:
    """Duck-typed MultiQueueNic steering surface with scripted loads."""

    def __init__(self, n_queues=4, size=8):
        self.n_queues = n_queues
        self.table = IndirectionTable(n_queues, size=size)
        self.backlogs = [[] for _ in range(n_queues)]
        self.counts = [0] * size
        self.staged = {}
        self.dispatch_buckets = {}
        self.moves = []

    def enable_bucket_stats(self):
        pass

    def bucket_counts(self):
        return list(self.counts)

    def staged_in_bucket(self, index):
        return self.staged.get(index, 0)

    def retarget_bucket(self, index, queue):
        if self.table.entries[index] == queue:
            return 0
        self.table.retarget(index, queue)
        self.moves.append((index, queue))
        return self.staged.get(index, 0)

    def enable_dispatch(self, bucket):
        self.dispatch_buckets.setdefault(bucket, 0)

    def retire_dispatch(self, bucket):
        self.dispatch_buckets.pop(bucket, None)


def rebalancer(mq, **kwargs):
    defaults = dict(interval=1, min_window=1, hysteresis=1, cooldown=0,
                    move_cost=0.0, reorder_cost=0.0, occupancy_weight=0.0)
    defaults.update(kwargs)
    policy = SteeringPolicy(**defaults)
    return RetaRebalancer(mq, policy, CounterRegistry().scope("port0"))


class TestRetaRebalancer:
    def _load_hot_queue(self, mq, first=600, second=400):
        # Buckets 0 and 4 both steer to queue 0 (round-robin init).
        mq.counts[0] += first
        mq.counts[4] += second

    def test_small_window_is_skipped(self):
        mq = FakeMq()
        reb = rebalancer(mq, min_window=100)
        mq.counts[0] += 10
        assert reb.evaluate(1) == 0
        assert mq.moves == []

    def test_migrates_hot_bucket_to_cold_queue(self):
        mq = FakeMq()
        reb = rebalancer(mq)
        self._load_hot_queue(mq)
        assert reb.evaluate(1) == 1
        # The hotter of queue 0's two buckets moved to an idle queue.
        assert mq.moves == [(0, 1)]
        assert mq.table.entries[0] == 1

    def test_never_swaps_the_hot_spot(self):
        # One bucket carries everything: moving it would only swap which
        # queue is hottest, so the rebalancer must leave it alone.
        mq = FakeMq()
        reb = rebalancer(mq)
        mq.counts[0] += 1000
        assert reb.evaluate(1) == 0
        assert mq.moves == []

    def test_below_trigger_never_arms(self):
        mq = FakeMq()
        reb = rebalancer(mq)
        for bucket in range(8):
            mq.counts[bucket] += 100  # perfectly balanced
        assert reb.evaluate(1) == 0
        assert mq.moves == []

    def test_hysteresis_requires_consecutive_triggers(self):
        mq = FakeMq()
        reb = rebalancer(mq, hysteresis=2)
        self._load_hot_queue(mq)
        assert reb.evaluate(1) == 0  # armed, streak 1
        self._load_hot_queue(mq)
        assert reb.evaluate(2) == 1  # streak 2: migrate
        # A balanced window in between resets the streak.
        mq2 = FakeMq()
        reb2 = rebalancer(mq2, hysteresis=2)
        self._load_hot_queue(mq2)
        assert reb2.evaluate(1) == 0
        for bucket in range(8):
            mq2.counts[bucket] += 100
        assert reb2.evaluate(2) == 0  # balanced: streak reset
        self._load_hot_queue(mq2)
        assert reb2.evaluate(3) == 0  # streak 1 again

    def test_cooldown_blocks_back_to_back_batches(self):
        mq = FakeMq()
        reb = rebalancer(mq, cooldown=10)
        self._load_hot_queue(mq)
        assert reb.evaluate(1) == 1  # bucket 0 moved to queue 1
        # Queue 1 (buckets 0 and 5) is now the hot queue each window.
        mq.counts[0] += 600
        mq.counts[5] += 400
        assert reb.evaluate(2) == 0  # inside the cooldown
        assert reb._skipped_cooldown.value == 1
        mq.counts[0] += 600
        mq.counts[5] += 400
        assert reb.evaluate(11) == 1  # cooldown expired

    def test_cost_gate_blocks_expensive_moves(self):
        mq = FakeMq()
        mq.staged[0] = 10_000  # deep reorder exposure on the hot bucket
        mq.staged[4] = 10_000
        reb = rebalancer(mq, reorder_cost=1.0)
        self._load_hot_queue(mq)
        assert reb.evaluate(1) == 0
        assert reb._skipped_cost.value > 0
        assert mq.moves == []

    def test_force_bypasses_every_gate(self):
        mq = FakeMq()
        mq.staged[0] = 10_000
        mq.staged[4] = 10_000
        reb = rebalancer(mq, reorder_cost=1.0, hysteresis=5,
                         min_window=10_000)
        self._load_hot_queue(mq)
        assert reb.evaluate(1, force=True) == 1
        assert mq.moves == [(0, 1)]

    def test_force_still_requires_improvement(self):
        mq = FakeMq()
        reb = rebalancer(mq)
        for bucket in range(8):
            mq.counts[bucket] += 100  # nothing to improve
        assert reb.evaluate(1, force=True) == 0

    def test_dispatch_enables_and_retires_with_hysteresis(self):
        mq = FakeMq()
        reb = rebalancer(mq, dispatch=True, dispatch_share=0.25)
        mq.counts[0] += 600   # 60% share: dispatched
        mq.counts[1] += 200   # 20%: below the enable share
        mq.counts[2] += 200
        reb.evaluate(1)
        assert mq.dispatch_buckets.keys() == {0}
        assert reb._dispatch_on.value == 1
        # Share falls below half the enable threshold: retired.
        mq.counts[0] += 10    # 1% of this window
        mq.counts[1] += 495
        mq.counts[2] += 495
        reb.evaluate(2)
        assert 0 not in mq.dispatch_buckets
        assert reb._dispatch_off.value == 1

    def test_dispatched_bucket_is_not_migrated(self):
        mq = FakeMq()
        reb = rebalancer(mq, dispatch=True, dispatch_share=0.25)
        self._load_hot_queue(mq)  # bucket 0 at 60% share: dispatched
        moved = reb.evaluate(1)
        assert 0 in mq.dispatch_buckets
        assert all(index != 0 for index, _ in mq.moves[:moved])


class TestShardSteering:
    def test_one_rebalancer_per_port_with_scoped_counters(self):
        ports = {0: FakeMq(), 1: FakeMq()}
        steering = ShardSteering(ports, SteeringPolicy())
        assert set(steering.rebalancers) == {0, 1}
        for port in ports:
            assert "port%d.moves" % port in steering.registry
            assert "port%d.evals" % port in steering.registry

    def test_on_round_honors_the_interval(self):
        mq = FakeMq()
        steering = ShardSteering({0: mq}, SteeringPolicy(
            interval=4, min_window=1, hysteresis=1, cooldown=0,
            move_cost=0.0, occupancy_weight=0.0))
        mq.counts[0] += 600
        mq.counts[4] += 400
        for round_no in (1, 2, 3):
            assert steering.on_round(round_no) == 0
        assert steering.on_round(4) == 1
        assert steering.moves() == 1

    def test_forced_rebalance_validates_the_port(self):
        steering = ShardSteering({0: FakeMq()}, SteeringPolicy())
        with pytest.raises(KeyError):
            steering.rebalance(1, port=7)
