"""Tests for pcap I/O and trace statistics."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.pcap import (
    PcapFormatError,
    PcapTraceGenerator,
    read_pcap,
    write_packets,
    write_pcap,
)
from repro.net.trace import CampusTraceGenerator, FixedSizeTraceGenerator, TraceSpec
from repro.net.tracestats import TraceStats, collect


class TestPcapRoundtrip:
    def _frames(self, n=5, size=64):
        gen = FixedSizeTraceGenerator(size, TraceSpec(pool_size=8))
        return [(i * 1e-5, p.data_bytes()) for i, p in enumerate(gen.packets(n))]

    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "t.pcap")
        frames = self._frames()
        assert write_pcap(path, frames) == 5
        back = list(read_pcap(path))
        assert [f for _, f in back] == [f for _, f in frames]
        for (ts_in, _), (ts_out, _) in zip(frames, back):
            assert ts_out == pytest.approx(ts_in, abs=1e-6)

    def test_write_packets_helper(self, tmp_path):
        path = str(tmp_path / "p.pcap")
        gen = FixedSizeTraceGenerator(128, TraceSpec(pool_size=4))
        assert write_packets(path, gen.packets(4, rate_pps=1e6)) == 4
        assert len(list(read_pcap(path))) == 4

    def test_snaplen_truncates(self, tmp_path):
        path = str(tmp_path / "s.pcap")
        write_pcap(path, [(0.0, bytes(200))], snaplen=96)
        (_, frame), = read_pcap(path)
        assert len(frame) == 96

    def test_rejects_bad_magic(self, tmp_path):
        path = str(tmp_path / "bad.pcap")
        with open(path, "wb") as handle:
            handle.write(b"\x00" * 24)
        with pytest.raises(PcapFormatError):
            list(read_pcap(path))

    def test_rejects_truncated_record(self, tmp_path):
        path = str(tmp_path / "trunc.pcap")
        write_pcap(path, [(0.0, bytes(64))])
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[:-10])
        with pytest.raises(PcapFormatError):
            list(read_pcap(path))

    def test_big_endian_capture_readable(self, tmp_path):
        path = str(tmp_path / "be.pcap")
        with open(path, "wb") as handle:
            handle.write(struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1))
            frame = bytes(range(64))
            handle.write(struct.pack(">IIII", 7, 500000, 64, 64))
            handle.write(frame)
        (ts, data), = read_pcap(path)
        assert ts == pytest.approx(7.5)
        assert data == frame

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.binary(min_size=14, max_size=200), min_size=1, max_size=10))
    def test_roundtrip_property(self, frames):
        import os
        import tempfile

        fd, path = tempfile.mkstemp(suffix=".pcap")
        os.close(fd)
        try:
            records = [(i * 0.001, f) for i, f in enumerate(frames)]
            write_pcap(path, records)
            assert [f for _, f in read_pcap(path)] == frames
        finally:
            os.unlink(path)


class TestPcapTraceGenerator:
    def _capture(self, tmp_path, n=6):
        path = str(tmp_path / "cap.pcap")
        gen = FixedSizeTraceGenerator(128, TraceSpec(pool_size=4))
        write_packets(path, gen.packets(n))
        return path

    def test_replays_in_order(self, tmp_path):
        path = self._capture(tmp_path)
        trace = PcapTraceGenerator(path)
        assert len(trace) == 6
        first = trace.next_packet().data_bytes()
        original = next(iter(read_pcap(path)))[1]
        assert first == original

    def test_loops_like_a_replay(self, tmp_path):
        trace = PcapTraceGenerator(self._capture(tmp_path, n=3))
        frames = [trace.next_packet().data_bytes() for _ in range(6)]
        assert frames[:3] == frames[3:]

    def test_no_repeat_mode_raises_at_end(self, tmp_path):
        trace = PcapTraceGenerator(self._capture(tmp_path, n=2), repeat=False)
        trace.next_packet()
        trace.next_packet()
        with pytest.raises(StopIteration):
            trace.next_packet()

    def test_empty_capture_rejected(self, tmp_path):
        path = str(tmp_path / "empty.pcap")
        write_pcap(path, [])
        with pytest.raises(PcapFormatError):
            PcapTraceGenerator(path)

    def test_drives_a_full_experiment(self, tmp_path):
        """A capture file can replace the synthetic trace end to end."""
        from repro.core.nfs import forwarder
        from repro.core.options import BuildOptions
        from repro.core.packetmill import PacketMill
        from repro.hw.params import MachineParams

        path = self._capture(tmp_path, n=64)
        binary = PacketMill(
            forwarder(), BuildOptions.packetmill(),
            params=MachineParams(), trace=PcapTraceGenerator(path),
        ).build()
        stats = binary.driver.run_batches(5)
        assert stats.tx_packets == 160


class TestTraceStats:
    def test_counts_and_mean(self):
        gen = FixedSizeTraceGenerator(256, TraceSpec(pool_size=8))
        stats = collect(gen.packets(10))
        assert stats.packets == 10
        assert stats.mean_len == 256
        assert stats.min_len == stats.max_len == 256

    def test_campus_trace_facts(self):
        gen = CampusTraceGenerator(TraceSpec(pool_size=1024))
        stats = collect(gen.packets(1024))
        assert 900 < stats.mean_len < 1050  # the paper's 981-B average
        assert stats.protocol_share("tcp") > 0.7
        assert stats.n_flows > 100
        assert stats.top_flow_share(0.1) > 0.3  # heavy tail

    def test_size_histogram_bins(self):
        stats = TraceStats()
        for frame_len in (60, 64, 65, 128, 1514):
            stats.add_frame(bytes(frame_len))
        assert stats.size_histogram[64] == 2
        assert stats.size_histogram[128] == 2
        assert stats.size_histogram[1514] == 1

    def test_flow_keying_separates_ports(self):
        from repro.net.addresses import IPv4Address
        from repro.net.flows import PROTO_TCP, FlowSpec
        from repro.net.trace import build_frame

        stats = TraceStats()
        for sport in (1000, 2000):
            flow = FlowSpec(IPv4Address("10.0.0.1"), IPv4Address("192.168.0.1"),
                            PROTO_TCP, sport, 80)
            stats.add_frame(build_frame(flow, 64))
        assert stats.n_flows == 2

    def test_report_format(self):
        gen = CampusTraceGenerator(TraceSpec(pool_size=64))
        stats = collect(gen.packets(64))
        report = stats.format_report()
        assert "mean frame" in report and "tcp" in report
