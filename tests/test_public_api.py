"""Tests for the top-level public API surface."""

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_lazy_exports(self):
        assert repro.PacketMill.__name__ == "PacketMill"
        assert repro.BuildOptions.vanilla().label() == "copying"
        assert repro.MetadataModel.XCHANGE.value == "xchange"

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.FluxCapacitor

    def test_all_matches_lazy_table(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_headline_flow(self):
        """The README's five-line quickstart works as written."""
        from repro import BuildOptions, PacketMill
        from repro.core.nfs import forwarder
        from repro.hw.params import MachineParams
        from repro.net.trace import FixedSizeTraceGenerator, TraceSpec
        from repro.perf.runner import measure_throughput

        params = MachineParams(freq_ghz=2.3)
        trace = FixedSizeTraceGenerator(512, TraceSpec(seed=1))
        vanilla = PacketMill(forwarder(), BuildOptions.vanilla(), params=params,
                             trace=trace).build()
        trace2 = FixedSizeTraceGenerator(512, TraceSpec(seed=1))
        packetmill = PacketMill(forwarder(), BuildOptions.packetmill(),
                                params=params, trace=trace2).build()
        v = measure_throughput(vanilla, batches=60, warmup_batches=30)
        p = measure_throughput(packetmill, batches=60, warmup_batches=30)
        assert p.pps > v.pps


class TestPackageLayering:
    """Lower layers must not import upper layers (the DESIGN.md stack)."""

    @pytest.mark.parametrize("lower,upper", [
        ("repro.telemetry", "repro.hw"),
        ("repro.telemetry", "repro.dpdk"),
        ("repro.telemetry", "repro.click"),
        ("repro.telemetry", "repro.core"),
        ("repro.net", "repro.hw"),
        ("repro.hw", "repro.dpdk"),
        ("repro.compiler", "repro.click"),
        ("repro.dpdk", "repro.click"),
        ("repro.click", "repro.core"),
        ("repro.net", "repro.core"),
        ("repro.compiler", "repro.analyze"),
        ("repro.dpdk", "repro.analyze"),
        ("repro.telemetry", "repro.analyze"),
    ])
    def test_no_upward_imports(self, lower, upper):
        import pkgutil
        import os

        package = __import__(lower, fromlist=["__path__"])
        root = os.path.dirname(package.__file__)
        offenders = []
        for dirpath, _, files in os.walk(root):
            for fname in files:
                if not fname.endswith(".py"):
                    continue
                path = os.path.join(dirpath, fname)
                with open(path) as handle:
                    text = handle.read()
                if "from %s" % upper in text or "import %s" % upper in text:
                    offenders.append(path)
        assert not offenders, "layering violation: %s imports %s in %s" % (
            lower, upper, offenders,
        )
