"""Facts-driven dead-code elimination: tier identity and cache keying."""

import pytest

from repro.compiler import codegen
from repro.core.nfs import guarded_router, router
from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.core.profile import RunProfile
from repro.exec import cache as exec_cache
from repro.hw.params import MachineParams
from repro.perf.runner import measure_throughput

TIERS = ("interpreter", "compiled", "codegen")


@pytest.fixture(autouse=True)
def fresh_state(monkeypatch):
    monkeypatch.delenv("REPRO_FACTS", raising=False)
    monkeypatch.delenv("REPRO_TIER", raising=False)
    exec_cache.reset_caches()
    codegen.reset_stats()
    yield
    exec_cache.reset_caches()
    codegen.reset_stats()


def _build(config=None, tier="compiled", facts=None):
    return PacketMill(
        config if config is not None else guarded_router(),
        BuildOptions.packetmill(),
        params=MachineParams().at_frequency(2.3),
        tier=tier,
        facts=facts,
    ).build()


def _measure(binary):
    return measure_throughput(binary, batches=40, warmup_batches=10)


# -- the acceptance bar: byte identity, facts on or off, every tier -----------


def test_facts_eliminate_branches_on_the_guarded_router():
    binary = _build(facts=True)
    facts = binary.program_facts
    assert facts, "guarded-router must yield a non-empty facts map"
    assert set(facts) == {"arpguard", "sw"}
    assert sum(f.branches_eliminated for f in facts.values()) >= 1


def test_three_tiers_are_byte_identical_facts_on_and_off():
    points = {}
    for tier in TIERS:
        for facts in (False, True):
            exec_cache.reset_caches()
            points[(tier, facts)] = _measure(_build(tier=tier, facts=facts))
    baseline = points[("interpreter", False)]
    for key, point in points.items():
        run = point.run
        base = baseline.run
        assert run.tx_packets == base.tx_packets, key
        assert run.tx_bytes == base.tx_bytes, key
        assert run.drops == base.drops, key
    # Within one facts setting, every tier charges identically.
    for facts in (False, True):
        pps = {points[(tier, facts)].pps for tier in TIERS}
        assert len(pps) == 1, "tiers disagree with facts=%s" % facts


def test_facts_only_remove_work():
    off = _measure(_build(facts=False))
    on = _measure(_build(facts=True))
    assert on.run.instructions < off.run.instructions
    assert on.pps > off.pps


def test_facts_are_inert_on_configs_without_dead_branches():
    binary = _build(config=router(), facts=True)
    assert not binary.program_facts
    exec_cache.reset_caches()
    plain = _measure(_build(config=router(), facts=False))
    exec_cache.reset_caches()
    facted = _measure(_build(config=router(), facts=True))
    assert facted.pps == plain.pps


# -- opt-in plumbing ----------------------------------------------------------


def test_facts_default_off():
    assert _build().program_facts is None


def test_environment_opts_whole_runs_in(monkeypatch):
    monkeypatch.setenv("REPRO_FACTS", "1")
    assert _build().program_facts


def test_explicit_false_overrides_the_environment(monkeypatch):
    monkeypatch.setenv("REPRO_FACTS", "1")
    assert _build(facts=False).program_facts is None


def test_profile_carries_the_facts_flag():
    profile = RunProfile(
        options=BuildOptions.packetmill(),
        params=MachineParams().at_frequency(2.3),
        facts=True,
    )
    binary = PacketMill.from_profile(guarded_router(), profile).build()
    assert binary.program_facts


def test_telemetry_counts_the_eliminated_work():
    binary = _build(facts=True)
    registry = binary.telemetry.registry
    assert registry.counter(
        "analyze.constprop.programs_specialized").value == 2
    assert registry.counter(
        "analyze.constprop.branches_eliminated").value >= 1
    assert registry.counter(
        "analyze.constprop.instructions_eliminated").value > 0


# -- cache separation ---------------------------------------------------------


def test_codegen_cache_keys_facts_builds_separately():
    _build(tier="codegen", facts=False)
    misses_after_plain = exec_cache.stats()["codegen_misses"]
    _build(tier="codegen", facts=True)
    assert exec_cache.stats()["codegen_misses"] == misses_after_plain + 1
    # Rebuilding either variant hits its own entry.
    hits = exec_cache.stats()["codegen_hits"]
    _build(tier="codegen", facts=False)
    _build(tier="codegen", facts=True)
    assert exec_cache.stats()["codegen_hits"] == hits + 2
