"""The ExecutionTier API: selection, bit-identity, fallback, counters."""

import warnings

import pytest

from repro.compiler import codegen
from repro.compiler import runtime
from repro.compiler.runtime import (
    DEFAULT_TIER,
    ExecutionTier,
    TierPolicy,
    select_tier,
)
from repro.core.nfs import router
from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.core.profile import RunProfile
from repro.click.handlers import HandlerBroker
from repro.exec import cache as exec_cache
from repro.faults import MBUF_EXHAUSTION, FaultSchedule, FaultSpec
from repro.hw.params import MachineParams
from repro.perf.runner import measure_throughput


@pytest.fixture(autouse=True)
def fresh_state(monkeypatch):
    # Selection tests assert the built-in defaults; scrub any ambient
    # tier configuration (e.g. a REPRO_TIER=codegen CI matrix run).
    for var in ("REPRO_TIER", "REPRO_TIER_CHECK", "REPRO_ROUTE_MEMO",
                "REPRO_FASTPATH"):
        monkeypatch.delenv(var, raising=False)
    exec_cache.reset_caches()
    codegen.reset_stats()
    yield
    exec_cache.reset_caches()
    codegen.reset_stats()


def _build(tier=None, **profile_kwargs):
    profile = RunProfile(
        options=BuildOptions.packetmill(),
        params=MachineParams().at_frequency(2.3),
        tier=tier,
        **profile_kwargs,
    )
    return PacketMill.from_profile(router(), profile).build()


# -- selection ----------------------------------------------------------------


def test_default_tier_is_compiled():
    selection = select_tier()
    assert selection.tier is DEFAULT_TIER is ExecutionTier.COMPILED
    assert not selection.demoted


def test_env_requests_a_tier(monkeypatch):
    monkeypatch.setenv("REPRO_TIER", "codegen")
    assert select_tier().tier is ExecutionTier.CODEGEN
    monkeypatch.setenv("REPRO_TIER", "interpreter")
    assert select_tier().tier is ExecutionTier.INTERPRETER


def test_policy_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_TIER", "interpreter")
    selection = select_tier(TierPolicy(tier="codegen"))
    assert selection.tier is ExecutionTier.CODEGEN


def test_unknown_tier_spelling_is_rejected():
    with pytest.raises(ValueError, match="unknown execution tier"):
        select_tier("jit")


def test_codegen_demotes_under_faults_and_watchdog():
    for kwargs in ({"faults": True}, {"watchdog": True}):
        selection = select_tier("codegen", **kwargs)
        assert selection.tier is ExecutionTier.COMPILED
        assert selection.demoted
        assert selection.requested is ExecutionTier.CODEGEN
        assert selection.reason


def test_route_memo_parks_under_any_instrumentation():
    assert select_tier().route_memo
    for kwargs in ({"faults": True}, {"watchdog": True}, {"telemetry": True}):
        assert not select_tier(**kwargs).route_memo


def test_fastpath_env_still_works_with_one_time_warning(monkeypatch):
    monkeypatch.setenv("REPRO_FASTPATH", "0")
    monkeypatch.setattr(runtime, "_fastpath_env_warned", False)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert not select_tier().route_memo
        assert not select_tier().route_memo
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert "REPRO_ROUTE_MEMO" in str(deprecations[0].message)


def test_route_memo_env_shadows_deprecated_alias(monkeypatch):
    monkeypatch.setenv("REPRO_FASTPATH", "1")
    monkeypatch.setenv("REPRO_ROUTE_MEMO", "0")
    assert not select_tier().route_memo


# -- bit-identity across tiers ------------------------------------------------


def test_run_stats_identical_across_all_tiers():
    snapshots = {}
    points = {}
    for tier in ExecutionTier:
        exec_cache.reset_caches()
        binary = _build(tier=tier)
        assert binary.driver.tier is tier
        points[tier] = measure_throughput(
            binary, batches=60, warmup_batches=30)
        snapshots[tier] = binary.driver.stats.snapshot()
    reference = snapshots[ExecutionTier.INTERPRETER]
    for tier in ExecutionTier:
        assert snapshots[tier] == reference, tier
        assert points[tier] == points[ExecutionTier.INTERPRETER], tier


def test_pmds_share_the_drivers_tier():
    binary = _build(tier="codegen")
    for pmd in binary.pmds.values():
        assert pmd.tier is ExecutionTier.CODEGEN
        assert pmd._rx_fn is not None and pmd._tx_fn is not None


# -- fallback under fault schedules -------------------------------------------


def test_codegen_falls_back_under_a_fault_schedule():
    faults = FaultSchedule(
        [FaultSpec(MBUF_EXHAUSTION, start=15, stop=25)], seed=7)
    binary = _build(tier="codegen", faults=faults)
    assert binary.driver.tier is ExecutionTier.COMPILED
    assert binary.driver.tier_selection.demoted
    assert binary.driver.tier_selection.requested is ExecutionTier.CODEGEN
    assert codegen.stats()["fallbacks"] >= 1
    # The demoted run still completes on the compiled tier.
    measure_throughput(binary, batches=40, warmup_batches=10)


def test_compile_failure_demotes_the_whole_build(monkeypatch):
    def broken(program, verify=None, check=None):
        raise codegen.CodegenError("boom")

    monkeypatch.setattr(codegen, "compile_program", broken)
    binary = _build(tier="codegen")
    assert binary.driver.tier is ExecutionTier.COMPILED
    assert binary.driver.tier_selection.reason == "codegen compile failed"
    point = measure_throughput(binary, batches=40, warmup_batches=10)
    assert point.pps > 0


# -- counters and caching -----------------------------------------------------


def test_codegen_counters_visible_through_the_broker():
    binary = _build(tier="codegen")
    broker = HandlerBroker(binary.driver.graph)
    assert int(broker.read("exec.codegen.compiles")) > 0
    assert int(broker.read("exec.codegen.selfchecks")) > 0
    assert int(broker.read("exec.codegen.tier_codegen")) >= 1
    matches = broker.read_many("exec.codegen.*")
    assert "exec.codegen.compiles" in matches
    assert "exec.codegen.fallbacks" in matches


def test_codegen_artifacts_cached_per_build():
    binary = _build(tier="codegen")
    n_elements = len(binary.exec_programs)
    assert exec_cache.stats()["codegen_misses"] == 1
    compiles = codegen.stats()["compiles"]
    _build(tier="codegen")
    assert exec_cache.stats()["codegen_hits"] == 1
    # The second build reuses the cached element artifact map; only the
    # PMD's freshly lowered rx/tx conversion programs can compile again.
    assert codegen.stats()["compiles"] - compiles < n_elements


# -- RunProfile ---------------------------------------------------------------


def test_profile_and_kwargs_builds_agree():
    exec_cache.reset_caches()
    via_profile = _build(tier="codegen")
    exec_cache.reset_caches()
    via_kwargs = PacketMill(
        router(), BuildOptions.packetmill(),
        params=MachineParams().at_frequency(2.3), tier="codegen",
    ).build()
    assert via_profile.driver.tier is via_kwargs.driver.tier
    a = measure_throughput(via_profile, batches=40, warmup_batches=10)
    b = measure_throughput(via_kwargs, batches=40, warmup_batches=10)
    assert a == b
