"""Sweep engine: picklability, serial/parallel bit-identity, fallbacks."""

import pickle

import pytest

from repro.core.nfs import forwarder
from repro.core.options import BuildOptions
from repro.exec import cache as exec_cache
from repro.exec.sweep import (
    PointSpec,
    SweepEngine,
    TraceKey,
    default_jobs,
    run_points,
)
from repro.experiments import fig01, fig06, fig10
from repro.experiments.common import Scale

#: Small but non-trivial scale for the determinism tests.
MICRO = Scale(
    name="micro",
    warmup_batches=20,
    batches=40,
    frequencies=(1.2, 3.0),
    packet_sizes=(64, 1472),
    latency_packets=5_000,
    footprints_mb=(1.0, 16.0),
    work_numbers=(0, 20),
)


@pytest.fixture(autouse=True)
def fresh_caches():
    exec_cache.reset_caches()
    yield
    exec_cache.reset_caches()


def _spec(**kwargs):
    defaults = dict(config=forwarder(), options=BuildOptions.packetmill(),
                    freq_ghz=2.3, batches=40, warmup_batches=20)
    defaults.update(kwargs)
    return PointSpec(**defaults)


class TestPicklability:
    def test_point_spec_roundtrips(self):
        spec = _spec(trace=TraceKey("fixed", 512, seed=9, per_port=False),
                     params_overrides=(("ddio_ways", 4),), burst=64)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_executed_point_roundtrips(self):
        point = _spec().execute()
        clone = pickle.loads(pickle.dumps(point))
        assert clone == point
        assert clone.gbps == point.gbps

    def test_multicore_spec_roundtrips_and_runs(self):
        spec = _spec(n_cores=2)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.execute() == spec.execute()

    def test_npf_test_result_roundtrips(self):
        from repro.perf.npf import TestResult

        result = TestResult(point={"freq": 2.3, "size": 64},
                            metrics={"gbps": [1.0, 2.0, 3.0]})
        clone = pickle.loads(pickle.dumps(result))
        assert clone.point == result.point
        assert clone.median("gbps") == result.median("gbps")

    def test_telemetry_enabled_point_roundtrips(self):
        # The telemetry bundle drags the full hardware model (TLB LRU
        # sets included) across the process boundary; a pickling failure
        # here silently degrades the sweep engine to serial execution.
        from repro.core.packetmill import PacketMill
        from repro.perf.runner import measure_throughput

        mill = PacketMill(forwarder(), BuildOptions.packetmill(),
                          telemetry=True)
        point = measure_throughput(mill.build(), batches=40, warmup_batches=20)
        clone = pickle.loads(pickle.dumps(point))
        assert clone == point


class TestEngine:
    def test_serial_and_forced_parallel_agree(self, monkeypatch):
        specs = [_spec(), _spec(options=BuildOptions.vanilla())]
        serial = SweepEngine(jobs=1, mode="serial").run(specs)
        exec_cache.reset_caches()
        monkeypatch.setenv("REPRO_JOBS", "2")
        parallel = SweepEngine(mode="parallel").run(specs)
        assert serial == parallel

    def test_point_cache_short_circuits_repeat_sweeps(self):
        specs = [_spec()]
        first = run_points(specs)
        second = run_points(specs)
        assert first == second
        stats = exec_cache.stats()
        assert stats["point_misses"] == 1
        assert stats["point_hits"] == 1

    def test_results_in_submission_order(self):
        specs = [_spec(freq_ghz=f) for f in (1.2, 2.0, 3.0)]
        points = run_points(specs)
        # Higher frequency -> strictly higher CPU service rate.
        assert points[0].cpu_pps < points[1].cpu_pps < points[2].cpu_pps

    def test_jobs_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        assert SweepEngine().jobs == 3
        monkeypatch.setenv("REPRO_SWEEP", "serial")
        assert not SweepEngine().parallel


class TestOversubscriptionGuard:
    """REPRO_JOBS x n_cores must not silently oversubscribe the host."""

    def test_inferred_jobs_divided_by_widest_point(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        engine = SweepEngine(mode="parallel")
        engine.jobs = 8  # pretend an 8-CPU host
        engine.jobs_explicit = False
        specs = [_spec(n_cores=cores) for cores in (1, 2, 4)]
        assert engine._effective_jobs(specs) == 2
        assert engine._effective_jobs([_spec()]) == 8
        # Wider than the host still leaves one worker.
        assert engine._effective_jobs([_spec(n_cores=16)]) == 1

    def test_explicit_jobs_win(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        engine = SweepEngine(mode="parallel")
        assert engine.jobs_explicit
        assert engine._effective_jobs([_spec(n_cores=4)]) == 8
        ctor = SweepEngine(jobs=6, mode="parallel")
        assert ctor._effective_jobs([_spec(n_cores=4)]) == 6


class TestShardedPoints:
    def test_skewed_trace_key_builds_and_runs(self):
        spec = _spec(trace=TraceKey("skewed", n_flows=5000, skew=1.2),
                     n_cores=2, batches=30, warmup_batches=10)
        blob = pickle.dumps(spec)
        point = pickle.loads(blob).execute()
        assert point.pps > 0
        assert point.cpu_pps > 0

    def test_rss_config_participates_in_spec_identity(self):
        from repro.net.rss import RssConfig

        a = _spec(n_cores=2, rss=RssConfig(backlog_cap=128))
        b = _spec(n_cores=2, rss=RssConfig(backlog_cap=256))
        assert a != b
        assert hash(a) != hash(b) or a != b

    def test_sharded_point_deterministic(self):
        spec = _spec(n_cores=2, batches=30, warmup_batches=10)
        first = spec.execute()
        second = spec.execute()
        assert first.pps == second.pps
        assert first.ns_per_packet == second.ns_per_packet


@pytest.mark.parametrize("mod", [fig01, fig06, fig10],
                         ids=["fig01", "fig06", "fig10"])
def test_experiment_serial_parallel_bit_identical(mod, monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP", "serial")
    serial = mod.run(MICRO).to_json()
    exec_cache.reset_caches()
    monkeypatch.setenv("REPRO_SWEEP", "parallel")
    monkeypatch.setenv("REPRO_JOBS", "2")
    parallel = mod.run(MICRO).to_json()
    assert serial == parallel
