"""Packet-class fast path: bit-identity and self-disabling guards."""

import pytest

from repro.core.nfs import router
from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.exec import cache as exec_cache
from repro.hw.params import MachineParams
from repro.perf.runner import measure_throughput


@pytest.fixture(autouse=True)
def fresh_caches():
    exec_cache.reset_caches()
    yield
    exec_cache.reset_caches()


def _run(monkeypatch, fastpath, **mill_kwargs):
    monkeypatch.setenv("REPRO_FASTPATH", "1" if fastpath else "0")
    exec_cache.reset_caches()
    mill = PacketMill(router(), BuildOptions.packetmill(),
                      params=MachineParams().at_frequency(2.3), **mill_kwargs)
    binary = mill.build()
    point = measure_throughput(binary, batches=60, warmup_batches=30)
    return binary, point


def test_fastpath_flag_follows_environment(monkeypatch):
    on, _ = _run(monkeypatch, fastpath=True)
    off, _ = _run(monkeypatch, fastpath=False)
    assert on.driver.fastpath
    assert not off.driver.fastpath


def test_run_stats_identical_with_and_without_fastpath(monkeypatch):
    binary_on, point_on = _run(monkeypatch, fastpath=True)
    binary_off, point_off = _run(monkeypatch, fastpath=False)
    assert binary_on.driver.stats.snapshot() == binary_off.driver.stats.snapshot()
    assert point_on == point_off


def test_fastpath_disables_under_telemetry(monkeypatch):
    binary, _ = _run(monkeypatch, fastpath=True, telemetry=True)
    assert not binary.driver.fastpath


def test_fastpath_populates_route_cache(monkeypatch):
    binary, _ = _run(monkeypatch, fastpath=True)
    assert binary.driver._route_cache, "no pure element was memoized"
    assert any(routes for routes in binary.driver._route_cache.values())
