"""Execution caches: trace snapshots, build memoization, key injectivity."""

import pytest

from repro.core.nfs import forwarder, router
from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.exec import cache as exec_cache
from repro.hw.params import MachineParams
from repro.net.trace import CampusTraceGenerator, FixedSizeTraceGenerator, TraceSpec
from repro.perf.runner import measure_throughput


@pytest.fixture(autouse=True)
def fresh_caches():
    exec_cache.reset_caches()
    yield
    exec_cache.reset_caches()


def _drain(gen, n=64):
    return [bytes(gen.next_packet().data()) for _ in range(n)]


class TestTraceCache:
    def test_restored_clone_matches_fresh_build(self):
        spec = TraceSpec(seed=7)
        fresh = CampusTraceGenerator(spec)
        cached_a = exec_cache.trace_from_spec("campus", None, TraceSpec(seed=7))
        cached_b = exec_cache.trace_from_spec("campus", None, TraceSpec(seed=7))
        assert cached_a is not cached_b
        want = _drain(fresh)
        assert _drain(cached_a) == want
        assert _drain(cached_b) == want

    def test_fixed_kind_restores_frame_length(self):
        gen = exec_cache.trace_from_spec("fixed", 512, TraceSpec(seed=3))
        exec_cache.trace_from_spec("fixed", 512, TraceSpec(seed=3))
        assert isinstance(gen, FixedSizeTraceGenerator)
        assert all(len(f) == 512 for f in _drain(gen, 16))

    def test_counters_track_hits_and_misses(self):
        exec_cache.trace_from_spec("campus", None, TraceSpec(seed=1))
        exec_cache.trace_from_spec("campus", None, TraceSpec(seed=1))
        exec_cache.trace_from_spec("campus", None, TraceSpec(seed=2))
        stats = exec_cache.stats()
        assert stats["trace_misses"] == 2
        assert stats["trace_hits"] == 1

    def test_distinct_specs_do_not_collide(self):
        a = exec_cache.trace_from_spec("fixed", 128, TraceSpec(seed=5))
        b = exec_cache.trace_from_spec("fixed", 256, TraceSpec(seed=5))
        c = exec_cache.trace_from_spec("fixed", 128, TraceSpec(seed=6))
        lens = {len(_drain(x, 1)[0]) for x in (a, b)}
        assert lens == {128, 256}
        assert _drain(a, 8) != _drain(c, 8)

    def test_disabled_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        exec_cache.trace_from_spec("campus", None, TraceSpec(seed=1))
        exec_cache.trace_from_spec("campus", None, TraceSpec(seed=1))
        assert exec_cache.stats()["trace_hits"] == 0


class TestBuildCache:
    def test_identical_builds_share_artifacts_bit_exactly(self):
        params = MachineParams().at_frequency(2.3)

        def build_and_run():
            mill = PacketMill(router(), BuildOptions.packetmill(), params=params)
            return measure_throughput(mill.build(), batches=40, warmup_batches=20)

        first = build_and_run()
        second = build_and_run()
        stats = exec_cache.stats()
        assert stats["build_misses"] == 1
        assert stats["build_hits"] == 1
        assert first == second

    def test_frequency_excluded_from_key(self):
        config = forwarder()
        for freq in (1.2, 2.0, 3.0):
            mill = PacketMill(config, BuildOptions.vanilla(),
                              params=MachineParams().at_frequency(freq))
            mill.build()
        stats = exec_cache.stats()
        assert stats["build_misses"] == 1
        assert stats["build_hits"] == 2

    def test_options_and_config_feed_the_key(self):
        params = MachineParams().at_frequency(2.3)
        PacketMill(forwarder(), BuildOptions.vanilla(), params=params).build()
        PacketMill(forwarder(), BuildOptions.packetmill(), params=params).build()
        PacketMill(router(), BuildOptions.vanilla(), params=params).build()
        assert exec_cache.stats()["build_misses"] == 3

    def test_machine_params_feed_the_key(self):
        PacketMill(forwarder(), BuildOptions.vanilla(),
                   params=MachineParams(freq_ghz=2.3, ddio_ways=2)).build()
        PacketMill(forwarder(), BuildOptions.vanilla(),
                   params=MachineParams(freq_ghz=2.3, ddio_ways=8)).build()
        assert exec_cache.stats()["build_misses"] == 2


class TestKeyInjectivity:
    def test_params_signature_ignores_only_frequency(self):
        base = MachineParams()
        assert (exec_cache.params_signature(base)
                == exec_cache.params_signature(base.at_frequency(1.2)))
        assert (exec_cache.params_signature(base)
                != exec_cache.params_signature(
                    MachineParams(ddio_ways=base.ddio_ways + 1)))

    def test_params_signature_injective_random_fields(self):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import given, settings, strategies as st

        @settings(max_examples=50, deadline=None)
        @given(ways_a=st.integers(1, 16), ways_b=st.integers(1, 16),
               freq_a=st.floats(1.0, 4.0, allow_nan=False),
               freq_b=st.floats(1.0, 4.0, allow_nan=False))
        def check(ways_a, ways_b, freq_a, freq_b):
            sig_a = exec_cache.params_signature(
                MachineParams(freq_ghz=freq_a, ddio_ways=ways_a))
            sig_b = exec_cache.params_signature(
                MachineParams(freq_ghz=freq_b, ddio_ways=ways_b))
            # Injective on every non-frequency field; blind to frequency.
            assert (sig_a == sig_b) == (ways_a == ways_b)

        check()

    def test_trace_keys_injective(self):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import given, settings, strategies as st

        @settings(max_examples=50, deadline=None)
        @given(seed_a=st.integers(0, 1000), seed_b=st.integers(0, 1000),
               flows_a=st.integers(1, 64), flows_b=st.integers(1, 64))
        def check(seed_a, seed_b, flows_a, flows_b):
            exec_cache.reset_caches()
            exec_cache.trace_from_spec(
                "campus", None, TraceSpec(seed=seed_a, n_flows=flows_a, pool_size=4))
            exec_cache.trace_from_spec(
                "campus", None, TraceSpec(seed=seed_b, n_flows=flows_b, pool_size=4))
            hits = exec_cache.stats()["trace_hits"]
            assert (hits == 1) == ((seed_a, flows_a) == (seed_b, flows_b))

        check()


class TestHandlerNamespace:
    def test_broker_reads_cache_counters(self):
        mill = PacketMill(forwarder(), BuildOptions.vanilla())
        binary = mill.build()
        from repro.click.handlers import HandlerBroker, HandlerError

        broker = HandlerBroker(binary.driver.graph)
        matches = broker.read("exec.cache.*")
        assert "exec.cache.build_misses: 1" in matches
        assert broker.read("exec.cache.trace_misses") == "1"
        with pytest.raises(HandlerError):
            broker.read("exec.cache.bogus")
