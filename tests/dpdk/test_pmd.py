"""Tests for the NIC model, metadata models, and the PMD RX/TX paths."""

import pytest

from repro.compiler.ir import DirectCall, PoolOp
from repro.compiler.structlayout import LayoutRegistry
from repro.dpdk.metadata import (
    PACKET_COMMON_FIELDS,
    CopyingModel,
    OverlayingModel,
    XChangeModel,
    build_fastclick_packet_layout,
    build_overlay_packet_layout,
    make_model,
)
from repro.dpdk.nic import Nic
from repro.dpdk.pmd import build_pmd
from repro.hw.cpu import CpuCore
from repro.hw.layout import AddressSpace
from repro.hw.memory import MemorySystem
from repro.hw.params import MachineParams
from repro.net.trace import FixedSizeTraceGenerator, TraceSpec


def make_rig(model_name="copying", lto=True, frame=128, rx_ring=64):
    params = MachineParams(rx_ring_size=rx_ring, tx_ring_size=rx_ring)
    mem = MemorySystem(params)
    cpu = CpuCore(params, mem)
    space = AddressSpace(seed=0)
    trace = FixedSizeTraceGenerator(frame, TraceSpec(pool_size=128))
    nic = Nic(params, mem, space, trace)
    model = make_model(model_name)
    pmd, registry = build_pmd(nic, model, cpu, space, params, lto=lto)
    return pmd, cpu, nic, model, registry


class TestPacketLayouts:
    def test_fastclick_layout_has_common_fields(self):
        layout = build_fastclick_packet_layout()
        for field in PACKET_COMMON_FIELDS:
            assert layout.has_field(field), field

    def test_overlay_layout_has_common_fields(self):
        layout = build_overlay_packet_layout()
        for field in PACKET_COMMON_FIELDS:
            assert layout.has_field(field), field

    def test_fastclick_hot_fields_span_three_lines(self):
        """Pre-reordering, the RX-hot fields spread over all three lines --
        the inefficiency the reorder pass removes."""
        layout = build_fastclick_packet_layout()
        hot = ["length", "data_ptr", "rss_anno", "vlan_anno", "timestamp"]
        assert layout.lines_touched(hot) == 3

    def test_overlay_anno_after_mbuf(self):
        layout = build_overlay_packet_layout()
        assert layout.offset_of("dst_ip_anno") >= 128


class TestModelFactory:
    def test_known_names(self):
        assert isinstance(make_model("copying"), CopyingModel)
        assert isinstance(make_model("overlaying"), OverlayingModel)
        assert isinstance(make_model("xchange"), XChangeModel)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_model("teleport")


class TestRxPath:
    @pytest.mark.parametrize("model_name", ["copying", "overlaying", "xchange"])
    def test_rx_burst_returns_packets(self, model_name):
        pmd, cpu, nic, model, _ = make_rig(model_name)
        pkts = pmd.rx_burst(32)
        assert len(pkts) == 32
        assert all(len(p) == 128 for p in pkts)
        assert all(p.mbuf is not None for p in pkts)

    def test_rx_burst_charges_cpu(self):
        pmd, cpu, *_ = make_rig()
        pmd.rx_burst(32)
        assert cpu.instructions > 32 * 20  # driver work per packet
        assert cpu.elapsed_ns() > 0

    def test_rx_ring_stays_full(self):
        pmd, _, nic, *_ = make_rig()
        pmd.rx_burst(32)
        assert nic.rx_ring.is_full()

    def test_rx_meta_addresses_differ_by_model(self):
        pmd_c, *_ = make_rig("copying")
        pmd_x, *_ = make_rig("xchange")
        pc = pmd_c.rx_burst(1)[0]
        px = pmd_x.rx_burst(1)[0]
        # Copying: metadata in a separate pool, distinct from the mbuf.
        assert pc.mbuf.meta_addr != pc.mbuf.mbuf_addr
        # X-Change: no rte_mbuf at all.
        assert px.mbuf.mbuf_addr == 0
        assert px.mbuf.meta_addr != 0

    def test_overlay_meta_is_the_mbuf(self):
        pmd, *_ = make_rig("overlaying")
        pkt = pmd.rx_burst(1)[0]
        assert pkt.mbuf.meta_addr == pkt.mbuf.mbuf_addr

    def test_xchange_metadata_pool_is_small(self):
        pmd, *_ = make_rig("xchange")
        metas = set()
        for _ in range(8):
            for pkt in pmd.rx_burst(32):
                metas.add(pkt.mbuf.meta_addr)
            pmd.tx_burst([])
        assert len(metas) <= 64  # bounded by meta_buffers

    def test_copying_metadata_cycles_with_pool(self):
        pmd, *_ = make_rig("copying")
        pkts = pmd.rx_burst(32)
        metas = {p.mbuf.meta_addr for p in pkts}
        assert len(metas) == 32  # each in-flight packet owns an object


class TestTxPath:
    @pytest.mark.parametrize("model_name", ["copying", "overlaying", "xchange"])
    def test_forward_loop_conserves_buffers(self, model_name):
        pmd, cpu, nic, model, _ = make_rig(model_name)
        for _ in range(50):
            pkts = pmd.rx_burst(32)
            assert pmd.tx_burst(pkts) == len(pkts)
        pmd.drain_tx()
        assert nic.tx_sent == 50 * 32
        if model.mempool is not None:
            # All mbufs eventually return: none leaked beyond the posted ring.
            outstanding = model.mempool.gets - model.mempool.puts
            assert outstanding == nic.rx_ring.count

    def test_tx_requires_buffer(self):
        from repro.net.packet import Packet

        pmd, *_ = make_rig()
        with pytest.raises(ValueError):
            pmd.tx_burst([Packet(b"\x00" * 64)])

    def test_tx_counts_bytes(self):
        pmd, _, nic, *_ = make_rig(frame=256)
        pkts = pmd.rx_burst(8)
        pmd.tx_burst(pkts)
        assert nic.tx_bytes == 8 * 256


class TestModelCostOrdering:
    def _ns_per_packet(self, model_name, lto=True, n_batches=200):
        pmd, cpu, *_ = make_rig(model_name, lto=lto)
        # Warm up caches/TLB first.
        for _ in range(50):
            pmd.tx_burst(pmd.rx_burst(32))
        cpu.reset()
        cpu.mem.reset_counters()
        for _ in range(n_batches):
            pmd.tx_burst(pmd.rx_burst(32))
        return cpu.elapsed_ns() / (n_batches * 32)

    def test_xchange_cheaper_than_overlaying_cheaper_than_copying(self):
        copying = self._ns_per_packet("copying")
        overlaying = self._ns_per_packet("overlaying")
        xchange = self._ns_per_packet("xchange")
        assert xchange < overlaying < copying

    def test_lto_helps_xchange(self):
        """Without LTO the conversion calls are real calls (paper §4.2)."""
        with_lto = self._ns_per_packet("xchange", lto=True)
        without = self._ns_per_packet("xchange", lto=False)
        assert with_lto < without

    def test_xchange_program_has_conversion_calls(self):
        model = XChangeModel()
        assert model.rx_program().count(DirectCall) >= 6

    def test_copying_program_has_pool_ops(self):
        model = CopyingModel()
        assert model.rx_program().count(PoolOp) == 2
        assert model.tx_program().count(PoolOp) == 2

    def test_xchange_program_has_no_pool_ops(self):
        model = XChangeModel()
        assert model.rx_program().count(PoolOp) == 0
        assert model.tx_program().count(PoolOp) == 0
