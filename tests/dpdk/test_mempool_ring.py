"""Tests for mempools, rings, mbuf layouts, and the PCIe model."""

import pytest

from repro.dpdk.mbuf import (
    CQE_SIZE,
    RTE_MBUF_SIZE,
    BufferRef,
    build_cqe_layout,
    build_mbuf_layout,
    build_tx_descriptor_layout,
)
from repro.dpdk.mempool import Mempool, MempoolEmptyError
from repro.dpdk.pcie import PcieModel
from repro.dpdk.ring import DescriptorRing
from repro.hw.layout import AddressSpace
from repro.hw.params import MachineParams


class TestMbufLayouts:
    def test_mbuf_spans_two_lines(self):
        layout = build_mbuf_layout()
        assert layout.size == RTE_MBUF_SIZE
        assert layout.cache_lines() == 2

    def test_rx_hot_fields_in_line0(self):
        layout = build_mbuf_layout()
        for field in ("pkt_len", "data_len", "rss_hash", "vlan_tci", "ol_flags"):
            assert layout.cache_line_of(field) == 0, field

    def test_tx_fields_in_line1(self):
        layout = build_mbuf_layout()
        for field in ("next", "tx_offload", "pool"):
            assert layout.cache_line_of(field) == 1, field

    def test_cqe_fits_one_line(self):
        layout = build_cqe_layout()
        assert layout.size == CQE_SIZE
        assert layout.cache_lines() == 1

    def test_tx_descriptor_fits_one_line(self):
        assert build_tx_descriptor_layout().cache_lines() == 1


class TestMempool:
    def _pool(self, n=8):
        return Mempool(AddressSpace(seed=0), n=n)

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            Mempool(AddressSpace(seed=0), n=0)

    def test_addresses_are_disjoint_and_spaced(self):
        pool = self._pool()
        a0 = pool.mbuf_addr(0)
        a1 = pool.mbuf_addr(1)
        assert a1 - a0 == pool.elt_size

    def test_data_addr_after_metadata_and_headroom(self):
        pool = self._pool()
        assert pool.data_addr(3) == pool.mbuf_addr(3) + RTE_MBUF_SIZE + pool.headroom

    def test_get_put_lifo(self):
        pool = self._pool(n=4)
        a = pool.get()
        b = pool.get()
        pool.put(a)
        c = pool.get()
        assert c.index == a.index  # LIFO: most recently freed comes back first
        assert b.index != c.index

    def test_exhaustion_raises(self):
        pool = self._pool(n=2)
        pool.get()
        pool.get()
        with pytest.raises(MempoolEmptyError):
            pool.get()

    def test_double_free_detected(self):
        pool = self._pool(n=2)
        ref = pool.get()
        pool.put(ref)
        with pytest.raises(RuntimeError):
            pool.put(ref)

    def test_put_validates_index(self):
        pool = self._pool(n=2)
        with pytest.raises(IndexError):
            pool.put(BufferRef(index=99, mbuf_addr=0, data_addr=0))

    def test_bulk_get_all_or_nothing(self):
        pool = self._pool(n=4)
        assert pool.bulk_get(5) is None
        refs = pool.bulk_get(4)
        assert len(refs) == 4
        assert pool.available == 0

    def test_stats(self):
        pool = self._pool(n=4)
        ref = pool.get()
        pool.put(ref)
        assert pool.gets == 1
        assert pool.puts == 1


class TestDescriptorRing:
    def _ring(self, size=8):
        return DescriptorRing(AddressSpace(seed=0), size, 64, "r")

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            DescriptorRing(AddressSpace(seed=0), 6, 64, "r")

    def test_fifo_order(self):
        ring = self._ring()
        ring.push("a")
        ring.push("b")
        assert ring.pop()[1] == "a"
        assert ring.pop()[1] == "b"

    def test_full_and_empty(self):
        ring = self._ring(size=2)
        assert ring.is_empty()
        ring.push(1)
        ring.push(2)
        assert ring.is_full()
        with pytest.raises(OverflowError):
            ring.push(3)
        ring.pop()
        ring.pop()
        with pytest.raises(IndexError):
            ring.pop()

    def test_wraparound(self):
        ring = self._ring(size=2)
        for i in range(10):
            ring.push(i)
            assert ring.pop()[1] == i

    def test_slot_addresses(self):
        ring = self._ring(size=4)
        assert ring.slot_addr(1) - ring.slot_addr(0) == 64
        assert ring.slot_addr(4) == ring.slot_addr(0)  # wraps

    def test_peek(self):
        ring = self._ring()
        ring.push("x")
        assert ring.peek() == "x"
        assert ring.count == 1


class TestPcieModel:
    def _model(self):
        return PcieModel(MachineParams())

    def test_overhead_grows_with_tlps(self):
        model = self._model()
        assert model.bytes_on_wire(256) < model.bytes_on_wire(257) + 0  # extra TLP
        assert model.bytes_on_wire(64) == 64 + 26 + 64

    def test_small_packet_latency_bound(self):
        model = self._model()
        params = MachineParams()
        assert model.pps_limit(64) == pytest.approx(1e9 / params.pcie_per_packet_ns)

    def test_large_packet_bandwidth_bound(self):
        model = self._model()
        # At MTU the limit must be bandwidth-derived, below the pps ceiling.
        assert model.pps_limit(1500) < model.pps_limit(64)

    def test_goodput_below_link_rate_at_mtu(self):
        """The paper's Fig. 6 premise: PCIe caps goodput slightly below
        the 100-Gbps link at large frame sizes."""
        model = self._model()
        goodput = model.goodput_gbps(1472)
        assert 90 < goodput < 105

    def test_pps_monotonically_nonincreasing_in_size(self):
        model = self._model()
        limits = [model.pps_limit(s) for s in range(64, 1500, 64)]
        assert all(a >= b for a, b in zip(limits, limits[1:]))
