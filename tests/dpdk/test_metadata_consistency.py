"""Cross-component consistency tests: conversion sets, layouts, models."""

import pytest

from repro.compiler.structlayout import LayoutRegistry
from repro.dpdk.metadata import (
    MBUF_RX_FIELDS,
    PACKET_COMMON_FIELDS,
    CopyingModel,
    OverlayingModel,
    XChangeModel,
    build_fastclick_packet_layout,
    build_mbuf_layout,
    make_model,
)
from repro.dpdk.tinynf import TinyNfModel
from repro.dpdk.xchg_api import (
    RX_METADATA_ITEMS,
    TX_METADATA_ITEMS,
    fastclick_conversions,
    minimal_conversions,
    standard_dpdk_conversions,
)
from repro.hw.layout import AddressSpace
from repro.hw.params import MachineParams

ALL_MODELS = [CopyingModel, OverlayingModel, XChangeModel, TinyNfModel]


def setup_model(cls):
    model = cls()
    model.setup(AddressSpace(seed=0), MachineParams())
    registry = LayoutRegistry()
    model.register_layouts(registry)
    return model, registry


class TestConversionSetConsistency:
    @pytest.mark.parametrize("conversions", [
        standard_dpdk_conversions(), fastclick_conversions(), minimal_conversions(),
    ])
    def test_targets_exist_in_their_layouts(self, conversions):
        """Every conversion function writes a field that really exists."""
        layouts = {
            "rte_mbuf": build_mbuf_layout(),
            "Packet": build_fastclick_packet_layout(),
        }
        for item, (struct, fieldname) in conversions.targets.items():
            assert layouts[struct].has_field(fieldname), (item, struct, fieldname)

    def test_tx_items_subset_of_rx_items_semantics(self):
        assert set(TX_METADATA_ITEMS) <= set(RX_METADATA_ITEMS)


class TestModelLayoutConsistency:
    @pytest.mark.parametrize("cls", ALL_MODELS)
    def test_packet_layout_has_common_fields(self, cls):
        _, registry = setup_model(cls)
        layout = registry.get("Packet")
        for fieldname in PACKET_COMMON_FIELDS:
            assert layout.has_field(fieldname), (cls.__name__, fieldname)

    @pytest.mark.parametrize("cls", ALL_MODELS)
    def test_driver_layouts_registered(self, cls):
        _, registry = setup_model(cls)
        for struct in ("rte_mbuf", "cqe", "tx_descriptor"):
            assert registry.get(struct) is not None

    @pytest.mark.parametrize("cls", ALL_MODELS)
    def test_programs_lower_cleanly(self, cls):
        from repro.compiler.lower import lower

        model, registry = setup_model(cls)
        rx = lower(model.rx_program(), registry)
        tx = lower(model.tx_program(), registry)
        assert rx.instructions > 0
        assert tx.instructions > 0
        assert any(op.target == "descriptor" for op in rx.mem_ops)
        assert any(op.target == "descriptor" for op in tx.mem_ops)

    def test_mbuf_rx_fields_exist(self):
        layout = build_mbuf_layout()
        for fieldname in MBUF_RX_FIELDS:
            assert layout.has_field(fieldname)


class TestBufferLifecycles:
    @pytest.mark.parametrize("cls", ALL_MODELS)
    def test_allocate_produces_usable_refs(self, cls):
        model, _ = setup_model(cls)
        ref = model.allocate(None)
        assert ref.data_addr > 0
        assert ref.meta_addr > 0
        model.release(ref, None)  # never raises

    def test_copying_allocate_distinct_meta(self):
        model, _ = setup_model(CopyingModel)
        a = model.allocate(None)
        b = model.allocate(None)
        assert a.meta_addr != b.meta_addr
        assert a.data_addr != b.data_addr

    def test_xchange_allocate_cycles_app_region(self):
        model, _ = setup_model(XChangeModel)
        first = model.allocate(None)
        for _ in range(XChangeModel.APP_TX_BUFFERS - 1):
            model.allocate(None)
        wrapped = model.allocate(None)
        assert wrapped.data_addr == first.data_addr

    def test_xchange_app_region_disjoint_from_rx_buffers(self):
        model, _ = setup_model(XChangeModel)
        rx = model.rx_buffer(None)
        app = model.allocate(None)
        assert app.data_addr != rx.data_addr

    def test_factory_all_names(self):
        for name in ("copying", "overlaying", "xchange", "tinynf"):
            assert make_model(name).name == name
