"""Tests for the TinyNF driver model and the vectorized-PMD/PGO extensions."""

import pytest

from repro.compiler.ir import Compute, PoolOp
from repro.compiler.passes import profile_guided, vectorize
from repro.compiler.ir import BranchHint, Program
from repro.core import nfs
from repro.core.options import BuildOptions, MetadataModel, OptionsError
from repro.core.packetmill import PacketMill
from repro.dpdk.metadata import make_model
from repro.dpdk.tinynf import TinyNfModel
from repro.hw.params import MachineParams
from repro.net.trace import FixedSizeTraceGenerator, TraceSpec


def build(options, config=None, freq=2.3, frame=1024):
    trace = lambda port, core: FixedSizeTraceGenerator(frame, TraceSpec(seed=1))
    return PacketMill(config or nfs.forwarder(), options,
                      params=MachineParams(freq_ghz=freq), trace=trace).build()


class TestTinyNfModel:
    def test_factory(self):
        assert isinstance(make_model("tinynf"), TinyNfModel)

    def test_no_buffering(self):
        assert not TinyNfModel().supports_buffering

    def test_minimal_metadata(self):
        model = TinyNfModel()
        assert len(model.conversions.targets) == 2

    def test_no_pool_ops(self):
        model = TinyNfModel()
        assert model.rx_program().count(PoolOp) == 0
        assert model.tx_program().count(PoolOp) == 0

    def test_forwarder_runs(self):
        binary = build(BuildOptions(metadata_model=MetadataModel.TINYNF, lto=True))
        run = binary.measure(batches=80, warmup_batches=40)
        assert run.tx_packets == run.packets

    def test_leaner_than_or_close_to_xchange(self):
        """TinyNF's static-slot model is at least as lean as X-Change on a
        plain forwarder (its advantage), it just can't do more (its cost)."""
        tinynf = build(BuildOptions(metadata_model=MetadataModel.TINYNF, lto=True))
        xchange = build(BuildOptions(metadata_model=MetadataModel.XCHANGE, lto=True))
        t = tinynf.measure(batches=100, warmup_batches=50).ns_per_packet
        x = xchange.measure(batches=100, warmup_batches=50).ns_per_packet
        assert t <= x * 1.02


class TestVectorizedPmd:
    def test_pass_scales_compute_only(self):
        program = Program("p", [Compute(100), BranchHint(0.1)])
        out = vectorize(program)
        compute = [op for op in out.ops if isinstance(op, Compute)][0]
        assert compute.instructions == pytest.approx(60.0)
        assert out.count(BranchHint) == 1

    def test_pass_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            vectorize(Program("p", []), factor=0.0)

    def test_option_incompatible_with_xchange(self):
        with pytest.raises(OptionsError):
            BuildOptions(metadata_model=MetadataModel.XCHANGE, vectorized_pmd=True)
        with pytest.raises(OptionsError):
            BuildOptions(metadata_model=MetadataModel.TINYNF, vectorized_pmd=True)

    def test_vectorized_copying_faster_than_scalar(self):
        scalar = build(BuildOptions(lto=True))
        vector = build(BuildOptions(lto=True, vectorized_pmd=True))
        s = scalar.measure(batches=100, warmup_batches=50).ns_per_packet
        v = vector.measure(batches=100, warmup_batches=50).ns_per_packet
        assert v < s

    def test_xchange_still_beats_vectorized_copying(self):
        """§4.6's argument: even the vectorized classic path does not
        recover X-Change's advantage."""
        vector = build(BuildOptions(lto=True, vectorized_pmd=True))
        xchange = build(BuildOptions(metadata_model=MetadataModel.XCHANGE, lto=True))
        v = vector.measure(batches=100, warmup_batches=50).ns_per_packet
        x = xchange.measure(batches=100, warmup_batches=50).ns_per_packet
        assert x < v


class TestPgo:
    def test_pass_halves_branch_misses(self):
        program = Program("p", [BranchHint(0.4), Compute(100)])
        out = profile_guided(program)
        hint = [op for op in out.ops if isinstance(op, BranchHint)][0]
        assert hint.miss_rate == pytest.approx(0.2)

    def test_pgo_build_improves_vanilla(self):
        plain = build(BuildOptions.vanilla(), config=nfs.router())
        pgo = build(BuildOptions(pgo=True), config=nfs.router())
        p = plain.measure(batches=100, warmup_batches=50).ns_per_packet
        g = pgo.measure(batches=100, warmup_batches=50).ns_per_packet
        assert g < p
        # ... by a BOLT-class sub-ten-percent margin, not a miracle.
        assert (p - g) / p < 0.10

    def test_pgo_composes_with_packetmill(self):
        from dataclasses import replace

        base = build(BuildOptions.packetmill(), config=nfs.router())
        extended = build(replace(BuildOptions.packetmill(), pgo=True), config=nfs.router())
        b = base.measure(batches=100, warmup_batches=50).ns_per_packet
        e = extended.measure(batches=100, warmup_batches=50).ns_per_packet
        assert e <= b

    def test_label_shows_extensions(self):
        label = BuildOptions(pgo=True, vectorized_pmd=True).label()
        assert "pgo" in label and "vec" in label
