"""Tests for the NIC hardware model."""

import pytest

from repro.dpdk.metadata import OverlayingModel
from repro.dpdk.nic import Nic
from repro.hw.layout import AddressSpace
from repro.hw.memory import MemorySystem
from repro.hw.params import MachineParams
from repro.net.trace import FixedSizeTraceGenerator, TraceSpec


def make_nic(frame=256, rx_ring=64):
    params = MachineParams(rx_ring_size=rx_ring, tx_ring_size=rx_ring)
    mem = MemorySystem(params)
    space = AddressSpace(seed=0)
    trace = FixedSizeTraceGenerator(frame, TraceSpec(pool_size=32))
    nic = Nic(params, mem, space, trace)
    model = OverlayingModel()
    model.setup(space, params)
    return nic, model, mem


class TestRxPath:
    def test_deliver_requires_posted_buffers(self):
        nic, model, _ = make_nic()
        assert nic.deliver(8) == []

    def test_deliver_fills_posted_buffers(self):
        nic, model, _ = make_nic()
        for _ in range(4):
            nic.post_rx(model.rx_buffer(None))
        out = nic.deliver(8)
        assert len(out) == 4  # bounded by posted buffers
        assert nic.rx_posted == 0
        assert nic.rx_delivered == 4

    def test_deliver_bounded_by_max(self):
        nic, model, _ = make_nic()
        for _ in range(8):
            nic.post_rx(model.rx_buffer(None))
        assert len(nic.deliver(3)) == 3
        assert nic.rx_posted == 5

    def test_dma_writes_data_and_cqe(self):
        nic, model, mem = make_nic(frame=256)
        nic.post_rx(model.rx_buffer(None))
        (ref, pkt), = nic.deliver(1)
        # 256-B frame = 4 lines, plus one CQE line.
        assert mem.counters[0].ddio_fills == 5
        assert ref.cqe_addr != 0

    def test_cqe_addresses_rotate(self):
        nic, model, _ = make_nic()
        for _ in range(3):
            nic.post_rx(model.rx_buffer(None))
        addrs = [ref.cqe_addr for ref, _ in nic.deliver(3)]
        assert len(set(addrs)) == 3

    def test_packets_come_from_trace(self):
        nic, model, _ = make_nic(frame=256)
        nic.post_rx(model.rx_buffer(None))
        (ref, pkt), = nic.deliver(1)
        assert len(pkt) == 256


class TestTxPath:
    def test_transmit_counts(self):
        nic, model, _ = make_nic()
        ref = model.rx_buffer(None)
        nic.transmit(ref, 256)
        assert nic.tx_sent == 1
        assert nic.tx_bytes == 256

    def test_reap_respects_threshold(self):
        nic, model, _ = make_nic()
        refs = [model.rx_buffer(None) for _ in range(5)]
        for ref in refs:
            nic.transmit(ref, 64)
        done = nic.reap_tx(threshold=2)
        assert len(done) == 3
        assert done[0] is refs[0]  # FIFO completion order

    def test_tx_ring_capacity(self):
        nic, model, _ = make_nic(rx_ring=4)
        for _ in range(4):
            nic.transmit(model.rx_buffer(None), 64)
        with pytest.raises(OverflowError):
            nic.transmit(model.rx_buffer(None), 64)
