"""Property tests: random seeded schedules never break the run's invariants.

For any schedule drawn from the full fault taxonomy with arbitrary
windows, probabilities, and magnitudes:

- ``driver.run_batches`` never lets an exception escape;
- packet conservation holds: every delivered frame is forwarded, counted
  as a drop, counted as an RX error, or still in flight;
- the mempool ledger balances once hostages are credited.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import ALL_KINDS, FaultSchedule, FaultSpec, assert_no_leak, check_conservation
from repro.hw.params import MachineParams

from tests.faults.conftest import build_forwarder

RUN_BATCHES = 40

windows = st.one_of(
    st.just((None, None)),
    st.tuples(st.integers(0, RUN_BATCHES), st.integers(1, RUN_BATCHES + 10)).map(
        lambda w: (w[0], w[0] + w[1])
    ),
)


@st.composite
def fault_specs(draw):
    start, stop = draw(windows)
    return FaultSpec(
        kind=draw(st.sampled_from(ALL_KINDS)),
        start=start,
        stop=stop,
        probability=draw(st.floats(0.0, 1.0, allow_nan=False)),
        magnitude=draw(st.one_of(st.none(), st.floats(0.0, 1.0, allow_nan=False))),
    )


schedules = st.builds(
    FaultSchedule,
    st.lists(fault_specs(), min_size=1, max_size=4),
    seed=st.integers(0, 2**32 - 1),
)


def small_params():
    return MachineParams(rx_ring_size=64, tx_ring_size=64)


@settings(max_examples=15, deadline=None)
@given(schedule=schedules)
def test_random_schedules_never_raise_and_conserve_packets(schedule):
    binary = build_forwarder(faults=schedule, watchdog_threshold=8,
                             params=small_params())
    stats = binary.driver.run_batches(RUN_BATCHES)
    assert stats.batches == RUN_BATCHES
    ledger = check_conservation(binary.driver, binary.injector)
    assert ledger["balance"] == 0
    assert ledger["rx_delivered"] == (
        stats.tx_packets + stats.drops + stats.rx_errors + ledger["in_flight"]
    )


@settings(max_examples=10, deadline=None)
@given(schedule=schedules)
def test_random_schedules_leave_no_leak(schedule):
    binary = build_forwarder(faults=schedule, watchdog_threshold=8,
                             params=small_params())
    binary.driver.run_batches(RUN_BATCHES)
    binary.driver.quiesce()
    audit = assert_no_leak(binary.driver, binary.injector)
    assert audit["leak"] == 0


@settings(max_examples=8, deadline=None)
@given(schedule=schedules, batches=st.integers(1, 60))
def test_random_schedules_are_deterministic(schedule, batches):
    def run():
        binary = build_forwarder(faults=schedule, watchdog_threshold=8,
                                 params=small_params())
        stats = binary.driver.run_batches(batches)
        return (stats.rx_packets, stats.tx_packets, stats.drops,
                stats.rx_nombuf, stats.imissed, stats.rx_errors,
                stats.tx_full, stats.watchdog_resets, stats.hw_counters)

    assert run() == run()
