"""The issue's acceptance scenario: storm, recover, replay, zero-cost off.

The chaos schedule (mempool-exhaustion window + link flap + 1% frame
corruption) must (1) complete without an exception with nonzero drop
counters, (2) recover to within 1% of the fault-free baseline once every
window closes, (3) replay bit-identically under the same seed, and
(4) cost nothing when disabled: an *empty* schedule must produce exactly
the numbers a build with no schedule at all produces.
"""

import pytest

from repro.faults import (
    CORRUPT,
    LINK_FLAP,
    MBUF_EXHAUSTION,
    FaultSchedule,
    FaultSpec,
    assert_no_leak,
    check_conservation,
)
from repro.perf.report import FAULT_DEGRADED, HEALTHY, classify, format_report

from tests.faults.conftest import build_forwarder

BATCHES = 300

CHAOS = FaultSchedule(
    [
        FaultSpec(MBUF_EXHAUSTION, start=60, stop=120),
        FaultSpec(LINK_FLAP, start=150, stop=170),
        FaultSpec(CORRUPT, start=0, stop=220, probability=0.01),
    ],
    seed=2021,
)


@pytest.fixture(scope="module")
def storm():
    binary = build_forwarder(faults=CHAOS)
    stats = binary.driver.run_batches(BATCHES)
    return binary, stats


class TestStormSurvival:
    def test_completes_with_nonzero_fault_counters(self, storm):
        _, stats = storm
        assert stats.batches == BATCHES
        assert stats.rx_nombuf > 0
        assert stats.imissed > 0
        assert stats.rx_errors > 0
        assert stats.hw_counters["rx_corrupt"] == stats.rx_errors
        assert stats.hw_counters["link_down_polls"] > 0

    def test_report_says_fault_degraded(self, storm):
        _, stats = storm
        assert classify(stats) == FAULT_DEGRADED
        report = format_report(stats, label="storm")
        assert "fault-degraded" in report
        assert "rx_nombuf" in report and "imissed" in report

    def test_invariants_hold_after_the_storm(self, storm):
        binary, _ = storm
        assert check_conservation(binary.driver, binary.injector)["balance"] == 0
        binary.driver.quiesce()
        binary.injector.release_all()
        assert_no_leak(binary.driver, binary.injector)


class TestRecovery:
    def test_throughput_recovers_within_one_percent(self):
        baseline = build_forwarder().measure(batches=BATCHES)
        chaotic = build_forwarder(faults=CHAOS)
        chaotic.driver.run_batches(BATCHES)      # ride out every window
        assert CHAOS.quiet_after() <= BATCHES
        chaotic.reset_measurements()
        recovered = chaotic.run(BATCHES)
        assert not recovered.stats.fault_degraded
        assert classify(recovered.stats) == HEALTHY
        delta = abs(recovered.ns_per_packet - baseline.ns_per_packet)
        assert delta / baseline.ns_per_packet <= 0.01


class TestDeterminism:
    def test_same_seed_identical_counters(self, storm):
        _, first = storm
        replay = build_forwarder(faults=CHAOS)
        second = replay.driver.run_batches(BATCHES)
        for field in ("rx_packets", "tx_packets", "tx_bytes", "drops",
                      "rx_nombuf", "imissed", "rx_errors", "tx_full",
                      "watchdog_resets"):
            assert getattr(second, field) == getattr(first, field), field
        assert second.hw_counters == first.hw_counters

    def test_different_seed_diverges(self, storm):
        _, first = storm
        reseeded = FaultSchedule(CHAOS.specs, seed=CHAOS.seed + 1)
        second = build_forwarder(faults=reseeded).driver.run_batches(BATCHES)
        assert second.hw_counters != first.hw_counters


class TestZeroCostWhenDisabled:
    def _numbers(self, run):
        return (run.packets, run.tx_packets, run.tx_bytes, run.drops,
                run.elapsed_ns, run.instructions, run.total_cycles)

    def test_empty_schedule_is_bit_identical_to_no_schedule(self):
        plain = build_forwarder().measure(batches=120)
        empty = build_forwarder(faults=FaultSchedule.empty()).measure(batches=120)
        assert self._numbers(empty) == self._numbers(plain)

    def test_empty_schedule_wires_no_injector(self):
        binary = build_forwarder(faults=FaultSchedule.empty())
        assert binary.injector is None
        assert binary.driver.injector is None

    def test_healthy_run_ledger_is_all_zero(self):
        stats = build_forwarder().driver.run_batches(50)
        assert not stats.fault_degraded
        assert classify(stats) == HEALTHY
        assert stats.hw_counters == {k: 0 for k in stats.hw_counters}
