"""Tests for run-health reporting and the DPDK-device stat handlers."""

from repro.click.driver import RunStats
from repro.click.handlers import HandlerBroker
from repro.faults import CORRUPT, MBUF_EXHAUSTION, FaultSchedule, FaultSpec
from repro.hw.counters import PerfCounters
from repro.perf.report import (
    FAULT_DEGRADED,
    HEALTHY,
    classify,
    drop_breakdown,
    format_report,
)

from tests.faults.conftest import build_forwarder


class TestClassify:
    def test_clean_stats_are_healthy(self):
        assert classify(RunStats(rx_packets=100, tx_packets=100)) == HEALTHY

    def test_any_ledger_entry_degrades(self):
        assert classify(RunStats(rx_nombuf=1)) == FAULT_DEGRADED
        assert classify(RunStats(imissed=1)) == FAULT_DEGRADED
        assert classify(RunStats(rx_errors=1)) == FAULT_DEGRADED
        assert classify(RunStats(tx_full=1)) == FAULT_DEGRADED
        assert classify(RunStats(error_batches=1)) == FAULT_DEGRADED
        assert classify(RunStats(watchdog_resets=1)) == FAULT_DEGRADED

    def test_counter_snapshot_accepted_too(self):
        snapshot = {"rx_nombuf": 0, "imissed": 3}
        assert classify(snapshot) == FAULT_DEGRADED
        assert drop_breakdown(snapshot) == {"imissed": 3}

    def test_pipeline_drops_alone_stay_healthy(self):
        # An NF that *discards* by design (e.g. a filter) is not degraded.
        assert classify(RunStats(rx_packets=10, drops=10)) == HEALTHY


class TestFormatReport:
    def test_healthy_report_names_the_bound(self):
        report = format_report(RunStats(rx_packets=5, tx_packets=5),
                               bound_by="cpu", label="fig1")
        assert report.startswith("fig1: healthy")
        assert "bound by: cpu" in report

    def test_degraded_report_lists_nonzero_entries_only(self):
        stats = RunStats(rx_packets=90, tx_packets=80, rx_nombuf=7)
        report = format_report(stats)
        assert "fault-degraded" in report
        assert "rx_nombuf" in report
        assert "imissed" not in report

    def test_degraded_report_names_raising_elements(self):
        stats = RunStats(error_batches=2,
                         errors_by_element={"nat": 2})
        assert "error boundary at nat" in format_report(stats)


class TestPerfCounterMirror:
    def test_measured_run_mirrors_drop_ledger(self):
        schedule = FaultSchedule(
            [FaultSpec(MBUF_EXHAUSTION, start=5, stop=40),
             FaultSpec(CORRUPT, start=0, stop=80, probability=0.05)],
            seed=9)
        binary = build_forwarder(faults=schedule)
        run = binary.run(100)
        assert run.counters["rx_nombuf"] == run.stats.rx_nombuf > 0
        assert run.counters["rx_errors"] == run.stats.rx_errors > 0
        assert run.counters["sw_drops"] == run.stats.drops
        assert classify(run.stats) == FAULT_DEGRADED

    def test_perfcounters_reset_clears_ledger(self):
        counters = PerfCounters()
        counters.rx_nombuf = 5
        counters.reset()
        assert counters.rx_nombuf == 0
        assert counters.snapshot()["rx_nombuf"] == 0


class TestThroughputPointHealth:
    def test_measure_throughput_carries_the_verdict(self):
        from repro.perf.runner import measure_throughput

        healthy = measure_throughput(build_forwarder(),
                                     batches=60, warmup_batches=30)
        assert not healthy.fault_degraded
        assert "healthy" in healthy.health_report()
        assert "bound by:" in healthy.health_report()

        schedule = FaultSchedule([FaultSpec(MBUF_EXHAUSTION)], seed=1)
        starved = measure_throughput(build_forwarder(faults=schedule),
                                     batches=60, warmup_batches=30)
        assert starved.fault_degraded
        assert "fault-degraded" in starved.health_report()


class TestDeviceHandlers:
    def test_port_stats_readable_through_handlers(self):
        schedule = FaultSchedule(
            [FaultSpec(MBUF_EXHAUSTION, start=5, stop=20)], seed=3)
        binary = build_forwarder(faults=schedule)
        binary.driver.run_batches(40)
        broker = HandlerBroker(binary.graph)
        assert int(broker.read("input.rx_nombuf")) > 0
        assert broker.read("output.tx_full") == "0"
        xstats = broker.read("input.xstats")
        assert "rx_nombuf:" in xstats and "imissed:" in xstats

    def test_unbound_device_reads_zero(self):
        from repro.click.graph import ProcessingGraph
        from repro.core.nfs import forwarder
        broker = HandlerBroker(ProcessingGraph.from_text(forwarder()))
        assert broker.read("input.rx_nombuf") == "0"
        assert broker.read("input.xstats") == "(unbound)"
