"""Tests for the declarative fault schedule."""

import pytest

from repro.faults import (
    ALL_KINDS,
    CORRUPT,
    LINK_FLAP,
    MBUF_EXHAUSTION,
    RATE_DIP,
    TRUNCATE,
    FaultSchedule,
    FaultSpec,
)


class TestFaultSpec:
    def test_window_is_half_open(self):
        spec = FaultSpec(LINK_FLAP, start=10, stop=20)
        assert not spec.active_at(9)
        assert spec.active_at(10)
        assert spec.active_at(19)
        assert not spec.active_at(20)

    def test_unbounded_sides(self):
        assert FaultSpec(LINK_FLAP).active_at(0)
        assert FaultSpec(LINK_FLAP).active_at(10**9)
        assert FaultSpec(LINK_FLAP, start=5).active_at(10**9)
        assert not FaultSpec(LINK_FLAP, start=5).active_at(4)
        assert FaultSpec(LINK_FLAP, stop=5).active_at(0)
        assert not FaultSpec(LINK_FLAP, stop=5).active_at(5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("bit_rot")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(CORRUPT, probability=1.5)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError, match="empty fault window"):
            FaultSpec(LINK_FLAP, start=10, stop=10)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="start"):
            FaultSpec(LINK_FLAP, start=-1)

    def test_bad_magnitude_rejected(self):
        with pytest.raises(ValueError, match="magnitude"):
            FaultSpec(RATE_DIP, magnitude=2.0)

    def test_default_magnitudes(self):
        assert FaultSpec(MBUF_EXHAUSTION).effective_magnitude == 1.0
        assert FaultSpec(RATE_DIP).effective_magnitude == 0.25
        assert FaultSpec(TRUNCATE).effective_magnitude == 0.5
        assert FaultSpec(RATE_DIP, magnitude=0.9).effective_magnitude == 0.9

    def test_port_filter(self):
        spec = FaultSpec(LINK_FLAP, port=1)
        assert spec.applies_to_port(1)
        assert not spec.applies_to_port(0)
        assert FaultSpec(LINK_FLAP).applies_to_port(7)  # None = all ports


class TestFaultSchedule:
    def test_empty(self):
        schedule = FaultSchedule.empty(seed=3)
        assert schedule.is_empty
        assert len(schedule) == 0
        assert schedule.seed == 3
        assert not schedule.any_active(0)
        assert schedule.quiet_after() == 0

    def test_active_filters_kind_tick_and_port(self):
        schedule = FaultSchedule([
            FaultSpec(LINK_FLAP, start=10, stop=20, port=0),
            FaultSpec(LINK_FLAP, start=10, stop=20, port=1),
            FaultSpec(CORRUPT, start=0, stop=30),
        ])
        assert len(schedule.active(LINK_FLAP, 15)) == 2
        assert len(schedule.active(LINK_FLAP, 15, port=1)) == 1
        assert schedule.active(LINK_FLAP, 25) == []
        assert len(schedule.active(CORRUPT, 25)) == 1

    def test_from_dicts_round_trip(self):
        schedule = FaultSchedule.from_dicts(
            [
                {"kind": "link_flap", "start": 100, "stop": 120},
                {"kind": "corrupt", "probability": 0.01},
            ],
            seed=7,
        )
        assert len(schedule) == 2
        assert schedule.seed == 7
        assert schedule.specs[0].kind == LINK_FLAP
        assert schedule.specs[1].probability == 0.01

    def test_from_dicts_validates(self):
        with pytest.raises(ValueError):
            FaultSchedule.from_dicts([{"kind": "nope"}])

    def test_quiet_after_is_max_stop(self):
        schedule = FaultSchedule([
            FaultSpec(LINK_FLAP, start=10, stop=20),
            FaultSpec(CORRUPT, start=0, stop=35),
        ])
        assert schedule.quiet_after() == 35
        assert not schedule.any_active(35)
        assert schedule.any_active(34)

    def test_quiet_after_none_when_unbounded(self):
        assert FaultSchedule([FaultSpec(CORRUPT)]).quiet_after() is None
        assert FaultSchedule([FaultSpec(CORRUPT, start=5)]).quiet_after() is None

    def test_iterates_in_declaration_order(self):
        specs = [FaultSpec(kind, start=0, stop=1) for kind in ALL_KINDS]
        assert [s.kind for s in FaultSchedule(specs)] == list(ALL_KINDS)
