"""Tests for the NIC's degraded RX path (budget, imissed, finite traces)."""

from repro.dpdk.metadata import OverlayingModel
from repro.dpdk.nic import Nic
from repro.faults import (
    CORRUPT,
    LINK_FLAP,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
)
from repro.hw.layout import AddressSpace
from repro.hw.memory import MemorySystem
from repro.hw.params import MachineParams
from repro.net.trace import FiniteTrace, FixedSizeTraceGenerator, TraceSpec


def make_nic(frame=256, ring=64, trace=None, port=0):
    params = MachineParams(rx_ring_size=ring, tx_ring_size=ring)
    mem = MemorySystem(params)
    space = AddressSpace(seed=0)
    trace = trace or FixedSizeTraceGenerator(frame, TraceSpec(pool_size=32))
    nic = Nic(params, mem, space, trace, port=port)
    model = OverlayingModel()
    model.setup(space, params)
    return nic, model


def attach(nic, specs, seed=0):
    injector = FaultInjector(FaultSchedule(specs, seed=seed))
    injector.begin_iteration()
    nic.faults = injector
    return injector


class TestInjectedDelivery:
    def test_flap_withholds_frames_without_consuming_trace(self):
        nic, model = make_nic()
        for _ in range(8):
            nic.post_rx(model.rx_buffer(None))
        attach(nic, [FaultSpec(LINK_FLAP, start=0, stop=1)])
        assert nic.deliver(8) == []
        assert nic.rx_posted == 8          # buffers stay posted
        assert nic.rx_delivered == 0
        assert nic.counters.link_down_polls == 1

    def test_corruption_flags_frames_in_place(self):
        nic, model = make_nic()
        for _ in range(4):
            nic.post_rx(model.rx_buffer(None))
        attach(nic, [FaultSpec(CORRUPT, probability=1.0)])
        out = nic.deliver(4)
        assert len(out) == 4
        assert all(pkt.rx_error == "corrupt" for _, pkt in out)

    def test_imissed_counts_arrivals_with_no_descriptor(self):
        nic, model = make_nic()
        for _ in range(3):
            nic.post_rx(model.rx_buffer(None))
        attach(nic, [])  # injector attached = saturated source semantics
        out = nic.deliver(8)
        assert len(out) == 3
        assert nic.counters.imissed == 5  # 8 arrivals, 3 descriptors

    def test_no_injector_no_imissed(self):
        nic, model = make_nic()
        nic.post_rx(model.rx_buffer(None))
        assert len(nic.deliver(8)) == 1
        assert nic.counters.imissed == 0

    def test_port_stamped_on_delivered_packets(self):
        nic, model = make_nic(port=3)
        nic.post_rx(model.rx_buffer(None))
        (_, pkt), = nic.deliver(1)
        assert pkt.port == 3


class TestFiniteTrace:
    def _finite_nic(self, limit):
        inner = FixedSizeTraceGenerator(256, TraceSpec(pool_size=32))
        return make_nic(trace=FiniteTrace(inner, limit))

    def test_trace_exhaustion_ends_delivery_cleanly(self):
        nic, model = self._finite_nic(limit=5)
        for _ in range(8):
            nic.post_rx(model.rx_buffer(None))
        out = nic.deliver(8)
        assert len(out) == 5
        assert nic.trace_exhausted
        assert nic.rx_posted == 3  # the unfilled buffer was re-posted

    def test_exhausted_nic_keeps_delivering_nothing(self):
        nic, model = self._finite_nic(limit=0)
        nic.post_rx(model.rx_buffer(None))
        assert nic.deliver(4) == []
        assert nic.deliver(4) == []
        assert nic.trace_exhausted
        assert nic.rx_posted == 1

    def test_finite_trace_counts_remaining(self):
        inner = FixedSizeTraceGenerator(64, TraceSpec(pool_size=8))
        trace = FiniteTrace(inner, 3)
        assert trace.remaining == 3
        trace.next_packet()
        assert trace.remaining == 2
        assert trace.mean_frame_length() == inner.mean_frame_length()
