"""Shared builders for the fault-injection suite."""

import pytest

from repro.core.nfs import forwarder
from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.hw.params import MachineParams


def build_forwarder(faults=None, watchdog_threshold=16, options=None,
                    params=None, config=None, trace=None):
    """A vanilla forwarder build (Copying model => real mempool)."""
    return PacketMill(
        config or forwarder(),
        options or BuildOptions.vanilla(),
        params=params or MachineParams(),
        trace=trace,
        faults=faults,
        watchdog_threshold=watchdog_threshold,
    ).build()


@pytest.fixture
def forwarder_builder():
    return build_forwarder
