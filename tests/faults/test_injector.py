"""Tests for the deterministic fault injector."""

from repro.dpdk.mempool import Mempool
from repro.dpdk.nic import NicCounters
from repro.faults import (
    CORRUPT,
    CQE_STALL,
    LINK_FLAP,
    MBUF_EXHAUSTION,
    RATE_DIP,
    RX_UNDERRUN,
    TRUNCATE,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
)
from repro.hw.layout import AddressSpace
from repro.net.checksum import verify_checksum
from repro.net.protocols import Ipv4Header
from repro.net.trace import FixedSizeTraceGenerator, TraceSpec


class FakeNic:
    """Just enough NIC surface for rx_budget: a port and counters."""

    def __init__(self, port=0):
        self.port = port
        self.counters = NicCounters()


def make_injector(specs, seed=0):
    return FaultInjector(FaultSchedule(specs, seed=seed))


def advance(injector, tick):
    while injector.tick < tick:
        injector.begin_iteration()


class TestMempoolPressure:
    def test_hostages_taken_and_released(self):
        pool = Mempool(AddressSpace(seed=0), n=16)
        injector = make_injector([FaultSpec(MBUF_EXHAUSTION, start=1, stop=3)])
        injector.bind_mempool(pool)
        injector.begin_iteration()  # tick 0: window not open
        assert injector.in_flight == 0
        injector.begin_iteration()  # tick 1: full pool held hostage
        assert injector.in_flight == 16
        assert pool.available == 0
        advance(injector, 3)        # window closed: all returned
        assert injector.in_flight == 0
        assert pool.available == 16

    def test_partial_magnitude(self):
        pool = Mempool(AddressSpace(seed=0), n=16)
        injector = make_injector(
            [FaultSpec(MBUF_EXHAUSTION, start=0, stop=2, magnitude=0.5)])
        injector.bind_mempool(pool)
        injector.begin_iteration()
        assert injector.in_flight == 8
        assert pool.available == 8

    def test_takes_at_most_whats_free(self):
        pool = Mempool(AddressSpace(seed=0), n=8)
        held = [pool.get() for _ in range(6)]
        injector = make_injector([FaultSpec(MBUF_EXHAUSTION, start=0, stop=2)])
        injector.bind_mempool(pool)
        injector.begin_iteration()
        assert injector.in_flight == 2  # only the free buffers
        for ref in held:
            pool.put(ref)

    def test_release_all_is_idempotent(self):
        pool = Mempool(AddressSpace(seed=0), n=4)
        injector = make_injector([FaultSpec(MBUF_EXHAUSTION, start=0, stop=9)])
        injector.bind_mempool(pool)
        injector.begin_iteration()
        injector.release_all()
        injector.release_all()
        assert pool.available == 4
        assert pool.gets == pool.puts

    def test_no_pool_bound_is_a_noop(self):
        injector = make_injector([FaultSpec(MBUF_EXHAUSTION)])
        injector.begin_iteration()
        assert injector.in_flight == 0


class TestRxBudget:
    def test_link_flap_zeroes_budget_and_counts(self):
        nic = FakeNic()
        injector = make_injector([FaultSpec(LINK_FLAP, start=0, stop=2)])
        injector.begin_iteration()
        assert injector.rx_budget(nic, 32) == 0
        assert nic.counters.link_down_polls == 1
        advance(injector, 2)
        assert injector.rx_budget(nic, 32) == 32

    def test_cqe_stall_zeroes_budget(self):
        nic = FakeNic()
        injector = make_injector([FaultSpec(CQE_STALL, start=0, stop=1)])
        injector.begin_iteration()
        assert injector.rx_budget(nic, 32) == 0
        assert nic.counters.cqe_stalls == 1

    def test_underrun_is_probabilistic(self):
        nic = FakeNic()
        injector = make_injector(
            [FaultSpec(RX_UNDERRUN, probability=0.5)], seed=11)
        injector.begin_iteration()
        budgets = [injector.rx_budget(nic, 32) for _ in range(200)]
        assert budgets.count(0) == nic.counters.rx_underruns
        assert 0 < budgets.count(0) < 200  # some polls empty, not all

    def test_rate_dip_scales_budget(self):
        nic = FakeNic()
        injector = make_injector([FaultSpec(RATE_DIP, magnitude=0.25)])
        injector.begin_iteration()
        assert injector.rx_budget(nic, 32) == 8

    def test_port_scoping(self):
        injector = make_injector([FaultSpec(LINK_FLAP, port=1)])
        injector.begin_iteration()
        assert injector.rx_budget(FakeNic(port=0), 32) == 32
        assert injector.rx_budget(FakeNic(port=1), 32) == 0


class TestFrameDamage:
    def _packet(self, frame=256):
        return FixedSizeTraceGenerator(frame, TraceSpec(pool_size=4)).next_packet()

    def _ip_header_bytes(self, pkt):
        return bytes(pkt.data()[14:14 + Ipv4Header.LENGTH])

    def test_corruption_really_breaks_the_checksum(self):
        pkt = self._packet()
        assert verify_checksum(self._ip_header_bytes(pkt))
        injector = make_injector([FaultSpec(CORRUPT, probability=1.0)])
        injector.begin_iteration()
        assert injector.mutate_frame(pkt, port=0) == "corrupt"
        assert pkt.rx_error == "corrupt"
        assert not verify_checksum(self._ip_header_bytes(pkt))

    def test_truncation_shortens_the_frame(self):
        pkt = self._packet(frame=512)
        injector = make_injector(
            [FaultSpec(TRUNCATE, probability=1.0, magnitude=0.25)])
        injector.begin_iteration()
        assert injector.mutate_frame(pkt, port=0) == "truncated"
        assert len(pkt) == 128
        assert pkt.rx_error == "truncated"

    def test_untouched_frame_has_no_verdict(self):
        pkt = self._packet()
        injector = make_injector([FaultSpec(CORRUPT, start=50, stop=60)])
        injector.begin_iteration()  # tick 0: window closed
        assert injector.mutate_frame(pkt, port=0) is None
        assert pkt.rx_error is None


class TestDeterminism:
    def _chaos_trace(self, seed):
        injector = make_injector(
            [
                FaultSpec(RX_UNDERRUN, probability=0.3),
                FaultSpec(CORRUPT, probability=0.1),
            ],
            seed=seed,
        )
        nic = FakeNic()
        trace = FixedSizeTraceGenerator(128, TraceSpec(pool_size=8))
        outcomes = []
        for _ in range(100):
            injector.begin_iteration()
            budget = injector.rx_budget(nic, 32)
            verdict = injector.mutate_frame(trace.next_packet(), 0)
            outcomes.append((budget, verdict))
        return outcomes, dict(injector.events)

    def test_same_seed_same_fault_sequence(self):
        first = self._chaos_trace(seed=42)
        second = self._chaos_trace(seed=42)
        assert first == second

    def test_different_seed_different_sequence(self):
        assert self._chaos_trace(seed=1) != self._chaos_trace(seed=2)
