"""Tests for the PMD's degraded paths: rx_nombuf, rx_errors, tx_full."""

from repro.dpdk.metadata import make_model
from repro.dpdk.nic import Nic
from repro.dpdk.pmd import build_pmd
from repro.faults import (
    CORRUPT,
    TX_BACKPRESSURE,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
)
from repro.hw.cpu import CpuCore
from repro.hw.layout import AddressSpace
from repro.hw.memory import MemorySystem
from repro.hw.params import MachineParams
from repro.net.trace import FixedSizeTraceGenerator, TraceSpec


def make_rig(frame=128, rx_ring=64, tx_ring=None):
    params = MachineParams(rx_ring_size=rx_ring, tx_ring_size=tx_ring or rx_ring)
    mem = MemorySystem(params)
    cpu = CpuCore(params, mem)
    space = AddressSpace(seed=0)
    trace = FixedSizeTraceGenerator(frame, TraceSpec(pool_size=128))
    nic = Nic(params, mem, space, trace)
    model = make_model("copying")
    pmd, _ = build_pmd(nic, model, cpu, space, params, lto=False)
    return pmd, nic, model


def attach(nic, specs, seed=0):
    injector = FaultInjector(FaultSchedule(specs, seed=seed))
    injector.begin_iteration()
    nic.faults = injector
    return injector


class TestRxNombuf:
    def test_replenish_failure_counts_not_raises(self):
        pmd, nic, model = make_rig()
        # Empty the pool from outside (another consumer won the race).
        hostages = []
        while model.mempool.available:
            hostages.append(model.mempool.get())
        pkts = pmd.rx_burst(8)        # consumes 8 posted buffers
        assert len(pkts) == 8         # delivery itself still works
        assert nic.counters.rx_nombuf > 0
        assert nic.rx_posted == nic.params.rx_ring_size - 8
        for ref in hostages:
            model.mempool.put(ref)

    def test_replenish_recovers_after_pressure_lifts(self):
        pmd, nic, model = make_rig()
        hostages = [model.mempool.get() for _ in range(model.mempool.available)]
        pmd.rx_burst(8)
        assert not nic.rx_ring.is_full()
        for ref in hostages:
            model.mempool.put(ref)
        pmd.rx_burst(8)               # next poll tops the ring back up
        assert nic.rx_ring.is_full()


class TestRxErrors:
    def test_damaged_frames_dropped_and_buffers_freed(self):
        pmd, nic, model = make_rig()
        attach(nic, [FaultSpec(CORRUPT, probability=1.0)])
        before = model.mempool.gets - model.mempool.puts
        pkts = pmd.rx_burst(8)
        assert pkts == []             # every frame failed validation
        assert nic.counters.rx_errors == 8
        assert nic.counters.rx_corrupt == 8
        # All 8 buffers went back to the pool and the ring was refilled.
        assert model.mempool.gets - model.mempool.puts == before
        assert nic.rx_ring.is_full()


class TestTxFull:
    def test_backpressure_refuses_burst_and_counts(self):
        pmd, nic, model = make_rig()
        attach(nic, [FaultSpec(TX_BACKPRESSURE, probability=1.0)])
        pkts = pmd.rx_burst(8)
        sent = pmd.tx_burst(pkts)
        assert sent == 0
        assert nic.counters.tx_full == 8
        assert nic.tx_sent == 0

    def test_ring_full_counts_remainder(self):
        pmd, nic, model = make_rig(rx_ring=64, tx_ring=4)
        pkts = pmd.rx_burst(8)
        sent = pmd.tx_burst(pkts)
        # 4-slot ring: some of the burst is refused and counted.
        assert sent < len(pkts)
        assert nic.counters.tx_full == len(pkts) - sent

    def test_recover_reaps_and_replenishes(self):
        pmd, nic, model = make_rig()
        pkts = pmd.rx_burst(8)
        pmd.tx_burst(pkts)
        pmd.recover()
        assert nic.tx_ring.count == 0
        assert nic.rx_ring.is_full()
