"""Mempool edge cases: exhaustion, double-free, and the leak invariant."""

import pytest

from repro.dpdk.mbuf import BufferRef
from repro.dpdk.mempool import Mempool, MempoolEmptyError
from repro.faults import (
    MBUF_EXHAUSTION,
    TX_BACKPRESSURE,
    FaultSpec,
    FaultSchedule,
    MempoolLeakError,
    assert_no_leak,
    mempool_audit,
)
from repro.hw.layout import AddressSpace

from tests.faults.conftest import build_forwarder


class TestMempoolEdgeCases:
    def _pool(self, n=8):
        return Mempool(AddressSpace(seed=0), n=n)

    def test_exhaustion_raises_typed_error(self):
        pool = self._pool(n=1)
        pool.get()
        with pytest.raises(MempoolEmptyError):
            pool.get()

    def test_exhausted_pool_recovers_after_put(self):
        pool = self._pool(n=1)
        ref = pool.get()
        with pytest.raises(MempoolEmptyError):
            pool.get()
        pool.put(ref)
        assert pool.get().index == ref.index

    def test_double_free_raises(self):
        pool = self._pool(n=2)
        ref = pool.get()
        pool.put(ref)
        with pytest.raises(RuntimeError):
            pool.put(ref)

    def test_foreign_ref_rejected(self):
        pool = self._pool(n=2)
        with pytest.raises(IndexError):
            pool.put(BufferRef(index=99, mbuf_addr=0, data_addr=0))

    def test_in_flight_tracks_outstanding_buffers(self):
        pool = self._pool(n=8)
        assert pool.in_flight == 0
        refs = [pool.get() for _ in range(3)]
        assert pool.in_flight == 3
        for ref in refs:
            pool.put(ref)
        assert pool.in_flight == 0


class TestLeakInvariant:
    def test_clean_run_has_no_leak(self):
        binary = build_forwarder()
        binary.driver.run_batches(50)
        audit = assert_no_leak(binary.driver)
        assert audit["leak"] == 0
        assert audit["posted_rx"] > 0  # ring stays stocked

    def test_faulted_run_has_no_leak(self):
        schedule = FaultSchedule([
            FaultSpec(MBUF_EXHAUSTION, start=10, stop=30),
            FaultSpec(TX_BACKPRESSURE, start=35, stop=45, probability=0.5),
        ], seed=5)
        binary = build_forwarder(faults=schedule)
        binary.driver.run_batches(60)
        audit = assert_no_leak(binary.driver, binary.injector)
        assert audit["hostages"] == 0  # windows closed: all returned
        assert audit["leak"] == 0

    def test_hostages_show_up_in_the_audit(self):
        schedule = FaultSchedule(
            [FaultSpec(MBUF_EXHAUSTION, start=0, stop=10**6, magnitude=0.25)],
            seed=5)
        binary = build_forwarder(faults=schedule)
        binary.driver.run_batches(5)
        audit = assert_no_leak(binary.driver, binary.injector)
        assert audit["hostages"] > 0
        assert audit["leak"] == 0
        # The same state *without* crediting the injector is a "leak":
        with pytest.raises(MempoolLeakError):
            assert_no_leak(binary.driver)
        binary.injector.release_all()
        assert_no_leak(binary.driver)

    def test_genuine_leak_is_caught(self):
        binary = build_forwarder()
        binary.driver.run_batches(5)
        stolen = binary.driver._model.mempool.get()  # never returned
        with pytest.raises(MempoolLeakError, match="1 buffer"):
            assert_no_leak(binary.driver)
        binary.driver._model.mempool.put(stolen)

    def test_audit_breakdown_balances(self):
        binary = build_forwarder()
        binary.driver.run_batches(20)
        audit = mempool_audit(binary.driver)
        assert audit["outstanding"] == (
            audit["posted_rx"] + audit["unreaped_tx"]
            + audit["queued"] + audit["hostages"]
        )
