"""Driver-level resilience: error boundary, watchdog, finite-trace EOF."""

from repro.click.element import Element, register
from repro.faults import (
    LINK_FLAP,
    MBUF_EXHAUSTION,
    FaultSchedule,
    FaultSpec,
    Watchdog,
    assert_no_leak,
    check_conservation,
)
from repro.net.trace import FiniteTrace, FixedSizeTraceGenerator, TraceSpec

from tests.faults.conftest import build_forwarder


@register
class FaultyTestElement(Element):
    """Raises on the Nth packet it sees (a buggy element under test)."""

    class_name = "FaultyTestElement"

    def configure(self, args, kwargs):
        self.declare_param("explode_at", int(kwargs.get("EXPLODE_AT", 100)))
        self.seen = 0

    def process(self, pkt):
        self.seen += 1
        if self.seen == self.param("explode_at"):
            raise RuntimeError("element bug: packet %d" % self.seen)
        return 0


@register
class AlwaysFaultyElement(Element):
    """Raises on every packet (a hopeless element under test)."""

    class_name = "AlwaysFaultyElement"

    def configure(self, args, kwargs):
        pass

    def process(self, pkt):
        raise RuntimeError("element bug: every packet")


FAULTY_CONFIG = """
input :: FromDPDKDevice(PORT 0, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> buggy :: FaultyTestElement(EXPLODE_AT 40) -> EtherMirror -> output;
"""


class TestErrorBoundary:
    def test_raising_element_quarantines_batch_not_run(self):
        binary = build_forwarder(config=FAULTY_CONFIG)
        stats = binary.driver.run_batches(10)
        # The run survived all 10 iterations...
        assert stats.batches == 10
        assert stats.rx_packets == 320
        # ...the incident was recorded against the buggy element...
        assert stats.error_batches == 1
        assert stats.errors_by_element == {"buggy": 1}
        assert stats.fault_degraded
        # ...and the whole batch in flight at the raise became counted
        # drops: the unprocessed remainder plus the packets the element
        # had already routed before blowing up at packet 40.
        assert stats.drops_by_element["buggy"] == 32
        assert stats.tx_packets == stats.rx_packets - stats.drops

    def test_quarantined_buffers_go_back_to_the_pool(self):
        binary = build_forwarder(config=FAULTY_CONFIG)
        binary.driver.run_batches(10)
        assert_no_leak(binary.driver)
        assert check_conservation(binary.driver)["balance"] == 0

    def test_every_batch_raising_still_terminates(self):
        config = FAULTY_CONFIG.replace(
            "FaultyTestElement(EXPLODE_AT 40)", "AlwaysFaultyElement")
        binary = build_forwarder(config=config)
        stats = binary.driver.run_batches(5)
        assert stats.batches == 5
        assert stats.error_batches == 5
        assert stats.tx_packets == 0
        assert stats.drops == stats.rx_packets
        assert_no_leak(binary.driver)


class TestWatchdogUnit:
    def test_trips_after_threshold_stalls(self):
        dog = Watchdog(threshold=3)
        assert not dog.observe(False)
        assert not dog.observe(False)
        assert dog.observe(False)       # third stall: trip
        assert dog.trips == 1
        assert dog.stalled_iterations == 0  # count restarts after a trip

    def test_progress_resets_the_count(self):
        dog = Watchdog(threshold=3)
        dog.observe(False)
        dog.observe(False)
        assert not dog.observe(True)
        assert not dog.observe(False)
        assert dog.trips == 0

    def test_threshold_validated(self):
        import pytest
        with pytest.raises(ValueError):
            Watchdog(threshold=0)


class TestWatchdogIntegration:
    def test_watchdog_recovers_a_starved_pipeline(self):
        # Full mempool exhaustion for a long window: the RX ring drains,
        # progress hits zero, and the watchdog must keep resetting until
        # the window closes and the pipeline refills.
        schedule = FaultSchedule(
            [FaultSpec(MBUF_EXHAUSTION, start=10, stop=120)], seed=1)
        binary = build_forwarder(faults=schedule, watchdog_threshold=8)
        stats = binary.driver.run_batches(200)
        assert stats.batches == 200          # the run never wedged for good
        assert stats.watchdog_resets > 0
        # After the window closes the pipeline moves packets again.
        post = binary.driver.step()
        assert post > 0
        assert_no_leak(binary.driver, binary.injector)

    def test_no_resets_on_a_healthy_run(self):
        binary = build_forwarder(watchdog_threshold=4)
        stats = binary.driver.run_batches(50)
        assert stats.watchdog_resets == 0

    def test_link_flap_stall_trips_watchdog(self):
        schedule = FaultSchedule([FaultSpec(LINK_FLAP, start=0, stop=40)], seed=2)
        binary = build_forwarder(faults=schedule, watchdog_threshold=8)
        stats = binary.driver.run_batches(40)
        assert stats.rx_packets == 0
        assert stats.watchdog_resets >= 4    # 40 stalled iterations / 8


class TestFiniteTraceRuns:
    def _finite_builder(self, limit):
        return lambda port, core: FiniteTrace(
            FixedSizeTraceGenerator(128, TraceSpec(pool_size=64)), limit)

    def test_run_ends_cleanly_at_trace_eof(self):
        binary = build_forwarder(trace=self._finite_builder(100))
        stats = binary.driver.run_batches(1000)
        assert stats.rx_packets == 100
        assert stats.tx_packets == 100       # quiesce flushed the TX ring
        assert stats.batches < 1000          # ended early, not by count
        assert binary.driver.at_eof()

    def test_eof_run_conserves_buffers_and_packets(self):
        binary = build_forwarder(trace=self._finite_builder(75))
        binary.driver.run_batches(1000)
        assert_no_leak(binary.driver)
        assert check_conservation(binary.driver)["balance"] == 0

    def test_stats_survive_extra_run_calls(self):
        binary = build_forwarder(trace=self._finite_builder(50))
        first = binary.driver.run_batches(100).tx_packets
        again = binary.driver.run_batches(100)
        assert again.tx_packets == first     # no phantom traffic after EOF
