"""WindowSampler: window closing, partial flush, monotone snapshots."""

import pytest

from repro.telemetry.registry import CounterRegistry
from repro.telemetry.sampler import PAPER_WINDOW_NS, WindowSampler

from tests.telemetry.conftest import build

pytestmark = pytest.mark.telemetry


def make():
    registry = CounterRegistry()
    handle = registry.counter("driver.rx_packets")
    sampler = WindowSampler(registry, window_ns=100.0)
    sampler.restart(0.0)
    return registry, handle, sampler


class TestWindowing:
    def test_no_window_before_the_edge(self):
        _, handle, sampler = make()
        handle.value = 10
        sampler.observe(99.0)
        assert sampler.windows == []

    def test_window_closes_past_the_edge(self):
        _, handle, sampler = make()
        handle.value = 10
        sampler.observe(130.0)
        assert len(sampler.windows) == 1
        window = sampler.windows[0]
        assert window.t_start_ns == 0.0
        assert window.t_end_ns == 100.0
        assert window.values["driver.rx_packets"] == 10
        assert not window.partial

    def test_multi_window_jump_charges_the_first(self):
        _, handle, sampler = make()
        handle.value = 30
        sampler.observe(350.0)
        assert [w.values["driver.rx_packets"] for w in sampler.windows] == [30, 0, 0]
        assert sampler.series("driver.rx_packets") == [30, 0, 0]

    def test_flush_closes_trailing_partial(self):
        _, handle, sampler = make()
        handle.value = 10
        sampler.observe(130.0)
        handle.value = 17
        sampler.flush(150.0)
        assert len(sampler.windows) == 2
        tail = sampler.windows[-1]
        assert tail.partial
        assert tail.t_start_ns == 100.0 and tail.t_end_ns == 150.0
        assert tail.values["driver.rx_packets"] == 7
        # A flush at the origin records nothing.
        sampler.flush(150.0)
        assert len(sampler.windows) == 2

    def test_cumulative_snapshots_are_monotone_for_counters(self):
        _, handle, sampler = make()
        for tick in range(1, 12):
            handle.value += tick
            sampler.observe(tick * 40.0)
        series = sampler.cumulative_series("driver.rx_packets")
        assert series == sorted(series)
        assert sum(sampler.series("driver.rx_packets")) == series[-1]

    def test_restart_drops_history(self):
        _, handle, sampler = make()
        handle.value = 10
        sampler.observe(150.0)
        sampler.restart(150.0)
        assert sampler.windows == []
        handle.value = 25
        sampler.observe(260.0)
        assert sampler.windows[0].values["driver.rx_packets"] == 15


class TestNormalization:
    def test_per_100ms_scales_by_duration(self):
        _, handle, sampler = make()
        handle.value = 10
        sampler.flush(50.0)  # one partial 50 ns window
        window = sampler.windows[0]
        assert window.per_100ms("driver.rx_packets") == pytest.approx(
            10 * PAPER_WINDOW_NS / 50.0
        )
        assert window.rate_per_s("driver.rx_packets") == pytest.approx(10 * 1e9 / 50.0)

    def test_paper_view_and_table(self):
        _, handle, sampler = make()
        handle.value = 10
        sampler.observe(130.0)
        sampler.flush(150.0)
        view = sampler.paper_view(["driver.rx_packets"])
        assert len(view) == 2
        table = sampler.format_table(["driver.rx_packets"])
        assert "rx_packets" in table
        assert "(partial)" in table

    def test_to_records(self):
        _, handle, sampler = make()
        handle.value = 3
        sampler.observe(110.0)
        records = sampler.to_records()
        assert records[0]["window"] == 0
        assert records[0]["driver.rx_packets"] == 3


class TestDriverIntegration:
    def test_run_produces_windows_over_simulated_time(self):
        binary = build()
        binary.driver.run_batches(200)
        sampler = binary.telemetry.sampler
        assert sampler.windows, "a 200-batch run should span at least one window"
        # Windows tile the run: contiguous, positive duration.
        for earlier, later in zip(sampler.windows, sampler.windows[1:]):
            assert later.t_start_ns >= earlier.t_end_ns - 1e-6
        total = sum(w.values.get("driver.rx_packets", 0) for w in sampler.windows)
        assert total == binary.driver.stats.rx_packets
