"""Every experiment result speaks the common ExperimentResult protocol."""

import json

import pytest

from repro.experiments import ablations, fig06, fig07, table1
from repro.experiments.result import ExperimentResult, series_points
from repro.perf.ascii import result_chart

pytestmark = pytest.mark.telemetry


def fig06_result():
    return fig06.Fig06Result(
        sizes=[64, 1500],
        gbps={"Vanilla": [10.0, 40.0], "PacketMill": [15.0, 48.0]},
        mpps={"Vanilla": [14.9, 3.3], "PacketMill": [22.3, 4.0]},
        bound_by={"Vanilla": ["cpu", "link"], "PacketMill": ["cpu", "link"]},
    )


class TestProtocol:
    def test_every_result_class_adopts_the_mixin(self):
        from repro.experiments import (
            fig01, fig04, fig05, fig08, fig09, fig10, fig11,
        )

        classes = [
            fig01.Fig01Result, fig04.Fig04Result, fig05.Fig05Result,
            fig06.Fig06Result, fig07.Fig07Result, fig08.Fig08Result,
            fig09.Fig09Result, fig10.Fig10Result, fig11.Fig11Result,
            table1.Table1Result, ablations.AblationResult,
        ]
        for cls in classes:
            assert issubclass(cls, ExperimentResult), cls.__name__

    def test_points_are_flat_records(self):
        result = fig06_result()
        assert result.name == "fig06"
        assert result.params == {"sizes": [64, 1500]}
        assert result.points[0] == {
            "variant": "Vanilla", "size": 64,
            "gbps": 10.0, "mpps": 14.9, "bound_by": "cpu",
        }
        assert len(result.points) == 4

    def test_to_json_round_trips(self):
        doc = json.loads(fig06_result().to_json())
        assert doc["name"] == "fig06"
        assert len(doc["points"]) == 4

    def test_fig07_surface_flattens_with_sorted_keys(self):
        result = fig07.Fig07Result(
            footprints_mb=[1.0], work_numbers=[4],
            surface={(5, 1.0, 4): (8.0, 30.0), (1, 1.0, 4): (10.0, 25.0)},
        )
        assert result.points == [
            {"n_accesses": 1, "footprint_mb": 1.0, "work": 4,
             "vanilla_gbps": 10.0, "improvement_pct": 25.0},
            {"n_accesses": 5, "footprint_mb": 1.0, "work": 4,
             "vanilla_gbps": 8.0, "improvement_pct": 30.0},
        ]
        json.loads(result.to_json())

    def test_ablation_result_keeps_its_own_name(self):
        result = ablations.AblationResult("devirt", [{"variant": "a", "gbps": 1.0}])
        assert result.name == "devirt"
        assert result.points == result.rows
        assert result.points is not result.rows

    def test_series_pivots_points(self):
        series = fig06_result().series("size", "gbps")
        assert series["Vanilla"] == ([64, 1500], [10.0, 40.0])

    def test_series_points_skips_missing_columns(self):
        points = series_points("x", [1, 2], {
            "a": {"v": [10, 20]},
            "b": {"v": [5]},  # ragged: second value missing
        })
        assert points == [
            {"variant": "v", "x": 1, "a": 10, "b": 5},
            {"variant": "v", "x": 2, "a": 20},
        ]


class TestChart:
    def test_result_chart_needs_no_shape_knowledge(self):
        chart = result_chart(fig06_result(), "size", "gbps")
        assert "fig06: gbps vs size" in chart
        assert "x Vanilla" in chart and "o PacketMill" in chart
