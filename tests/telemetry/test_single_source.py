"""One storage cell per statistic: every view reads the same registry."""

import pytest

from repro.click.driver import RunStats
from repro.core.nfs import router
from repro.hw.counters import PerfCounters
from repro.telemetry.registry import CounterRegistry

from tests.telemetry.conftest import build

pytestmark = pytest.mark.telemetry


class TestSharedStorage:
    def test_runstats_and_registry_read_the_same_cell(self):
        registry = CounterRegistry()
        stats = RunStats(registry)
        stats.rx_packets = 7
        assert registry.get("driver.rx_packets") == 7
        registry.counter("driver.rx_packets").value = 11
        assert stats.rx_packets == 11

    def test_perfcounters_and_registry_read_the_same_cell(self):
        registry = CounterRegistry()
        counters = PerfCounters(registry, "cpu")
        counters.llc_misses += 9
        assert registry.get("cpu.llc_misses") == 9

    def test_keyword_construction_still_works(self):
        counters = PerfCounters(llc_loads=500, packets=100)
        assert counters.llc_loads == 500
        assert counters.per_packet("llc_loads") == 5.0
        with pytest.raises(TypeError):
            PerfCounters(unknown_field=1)
        stats = RunStats(rx_nombuf=1)
        assert stats.rx_nombuf == 1
        stats = RunStats(errors_by_element={"nat": 2})
        assert stats.errors_by_element == {"nat": 2}


class TestLiveRunViews:
    def test_xstats_runstats_and_perfcounters_agree(self):
        binary = build(config=router())
        run = binary.measure(batches=60, warmup_batches=30)
        stats = binary.driver.stats
        registry = binary.telemetry.registry
        # NIC hardware ledger: xstats == registry == RunStats hw view.
        broker_view = binary.graph.by_class("FromDPDKDevice")[0].xstats()
        for name in ("rx_nombuf", "imissed", "rx_errors"):
            port_name = "nic.0.%s" % name
            assert broker_view[name] == registry.get(port_name)
        # The measured run's counter snapshot mirrors the driver ledger.
        assert run.counters["rx_nombuf"] == stats.rx_nombuf
        assert run.counters["sw_drops"] == stats.drops
        assert run.rx_nombuf == run.counters["rx_nombuf"]
        assert run.ledger["sw_drops"] == stats.drops
        # Per-element drops live under element.<name>.drops.
        for name, count in stats.drops_by_element.items():
            assert registry.get("element.%s.drops" % name) == count

    def test_old_attribute_names_keep_working(self):
        binary = build(config=router())
        binary.driver.run_batches(40)
        stats = binary.driver.stats
        # The pre-registry RunStats surface, unchanged.
        assert stats.batches == 40
        assert stats.rx_packets > 0
        assert stats.tx_packets > 0
        assert isinstance(stats.drops_by_element, dict)
        assert isinstance(stats.hw_counters, dict)
        assert stats.dropped_total >= 0
        snapshot = stats.snapshot()
        assert snapshot["rx_packets"] == stats.rx_packets

    def test_freeze_detaches_from_live_registry(self):
        binary = build(config=router())
        binary.driver.run_batches(40)
        frozen = binary.driver.stats
        rx_before = frozen.rx_packets
        binary.driver.reset_stats()
        assert binary.driver.stats.rx_packets == 0
        binary.driver.run_batches(10)
        # The frozen stats kept their values; the new view counts afresh.
        assert frozen.rx_packets == rx_before
        assert binary.driver.stats.batches == 10

    def test_multicore_aggregation_merges_replicas(self):
        from repro.core.packetmill import PacketMill
        from repro.perf.runner import aggregate_counters

        binaries = PacketMill(router(), telemetry=True).build_multicore(2)
        for binary in binaries:
            binary.driver.run_batches(20)
        total = aggregate_counters(binaries)
        assert total["driver.rx_packets"] == sum(
            b.driver.stats.rx_packets for b in binaries
        )
        assert total["driver.batches"] == 40

    def test_equal_runs_compare_equal(self):
        first = build(config=router(), seed=3)
        second = build(config=router(), seed=3)
        first.driver.run_batches(30)
        second.driver.run_batches(30)
        assert first.driver.stats == second.driver.stats
        assert first.cpu.counters == second.cpu.counters
