"""Tests for the live merged registry (cluster-level telemetry views)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.registry import (
    GAUGE,
    CounterRegistry,
    MergedRegistry,
    TelemetryError,
)


def make_children(values_per_core):
    children = []
    for values in values_per_core:
        reg = CounterRegistry()
        for name, value in values.items():
            reg.counter(name).value = value
        children.append(reg)
    return children


class TestBasics:
    def test_aggregate_sums_across_children(self):
        merged = CounterRegistry.merge(make_children([
            {"driver.rx_packets": 10, "driver.drops": 1},
            {"driver.rx_packets": 32},
        ]))
        assert merged.get("driver.rx_packets") == 42
        assert merged.get("driver.drops") == 1
        assert merged.get("missing", -1) == -1

    def test_core_prefixed_reads_one_child(self):
        merged = CounterRegistry.merge(make_children([
            {"driver.rx_packets": 10}, {"driver.rx_packets": 32}]))
        assert merged.get("core0.driver.rx_packets") == 10
        assert merged.get("core1.driver.rx_packets") == 32
        assert merged.get("core7.driver.rx_packets", -1) == -1
        assert "core1.driver.rx_packets" in merged
        assert "core7.driver.rx_packets" not in merged

    def test_live_view_sees_updates(self):
        children = make_children([{"x": 0}, {"x": 0}])
        merged = CounterRegistry.merge(children)
        assert merged.get("x") == 0
        children[0].counter("x").add(5)
        children[1].counter("x").add(2)
        assert merged.get("x") == 7

    def test_mounts_resolve_before_children(self):
        children = make_children([{"ingested": 999}])
        merged = CounterRegistry.merge(children)
        ledger = CounterRegistry()
        ledger.counter("ingested").value = 123
        merged.mount("rss.0", ledger)
        assert merged.get("rss.0.ingested") == 123
        assert merged.get("ingested") == 999

    def test_read_only(self):
        merged = CounterRegistry.merge(make_children([{"x": 1}]))
        with pytest.raises(TelemetryError):
            merged.counter("new")

    def test_kind_resolution(self):
        child = CounterRegistry()
        child.gauge("depth").set(4)
        child.counter("events").add(2)
        merged = CounterRegistry.merge([child])
        assert merged.kind_of("depth") == GAUGE
        assert merged.kind_of("core0.events") == "counter"
        assert merged.kind_of("missing") is None

    def test_names_carry_both_views(self):
        merged = CounterRegistry.merge(make_children([{"a": 1}, {"a": 2}]))
        names = merged.names()
        assert "a" in names and "core0.a" in names and "core1.a" in names
        assert merged.aggregate_names() == ["a"]

    def test_reset_cascades(self):
        children = make_children([{"x": 5}, {"x": 7}])
        merged = CounterRegistry.merge(children)
        merged.reset()
        assert merged.get("x") == 0
        assert children[0].get("x") == 0


class TestConservationProperties:
    """The merged view never invents or loses a count."""

    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.dictionaries(
            st.sampled_from(["driver.rx_packets", "driver.drops",
                             "nic.0.imissed", "nic.0.rx_nombuf"]),
            st.integers(0, 10**9), max_size=4),
        min_size=1, max_size=6))
    def test_aggregate_equals_sum(self, values_per_core):
        merged = CounterRegistry.merge(make_children(values_per_core))
        for name in merged.aggregate_names():
            expected = sum(v.get(name, 0) for v in values_per_core)
            assert merged.get(name) == expected
            assert merged.get(name) == sum(merged.per_core(name))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 1000)),
                             max_size=20),
                    min_size=4, max_size=4))
    def test_interleaved_updates_conserve(self, update_streams):
        """Fault-schedule-style interleaved bumps: per-core books and the
        cluster book agree at every point in time."""
        children = [CounterRegistry() for _ in range(4)]
        handles = [child.counter("faults.injected") for child in children]
        merged = CounterRegistry.merge(children)
        injected = [0, 0, 0, 0]
        for stream in update_streams:
            for core, amount in stream:
                handles[core].add(amount)
                injected[core] += amount
                assert merged.get("faults.injected") == sum(injected)
        for core in range(4):
            assert merged.get("core%d.faults.injected" % core) == injected[core]

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.dictionaries(st.sampled_from(["a.x", "b.y", "c"]),
                        st.integers(0, 10**6), max_size=3),
        min_size=1, max_size=5),
        st.text(alphabet="abcxy.", max_size=8))
    def test_snapshot_consistent_with_get(self, values_per_core, _noise):
        merged = CounterRegistry.merge(make_children(values_per_core))
        snap = merged.snapshot()
        for name, value in snap.items():
            assert merged.get(name) == value
