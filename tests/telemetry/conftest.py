"""Shared builders for the telemetry suite."""

import pytest

from repro.core.nfs import forwarder, router
from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.hw.params import MachineParams
from repro.telemetry import TelemetryConfig


def build(config=None, telemetry=True, options=None, faults=None,
          params=None, seed=0):
    """A vanilla build with telemetry recorders on by default."""
    if telemetry is True:
        telemetry = TelemetryConfig()
    return PacketMill(
        config or forwarder(),
        options or BuildOptions.vanilla(),
        params=params or MachineParams(),
        seed=seed,
        faults=faults,
        telemetry=telemetry,
    ).build()


def build_router(**kwargs):
    return build(config=router(), **kwargs)


@pytest.fixture
def builder():
    return build
