"""SpanRecorder: nesting, folded stacks, rendering, exports."""

import csv
import io
import json

import pytest

from repro.core.nfs import router
from repro.telemetry.flamegraph import (
    render_flamegraph,
    render_top,
    spans_to_csv,
    spans_to_json,
)
from repro.telemetry.spans import SpanRecorder

from tests.telemetry.conftest import build

pytestmark = pytest.mark.telemetry


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def recorded():
    """iteration(0..100) > a(10..40) > b(15..35), then a again(50..70)."""
    clock = FakeClock()
    recorder = SpanRecorder(clock)
    recorder.push("iteration")
    clock.now = 10.0
    recorder.push("a")
    clock.now = 15.0
    recorder.push("b")
    clock.now = 35.0
    recorder.pop()
    clock.now = 40.0
    recorder.pop()
    clock.now = 50.0
    recorder.push("a")
    clock.now = 70.0
    recorder.pop()
    clock.now = 100.0
    recorder.pop()
    return recorder


class TestAggregation:
    def test_folded_stacks_aggregate_by_path(self):
        recorder = recorded()
        folded = recorder.folded()
        assert folded[("iteration",)] == (100.0, 1)
        assert folded[("iteration", "a")] == (50.0, 2)
        assert folded[("iteration", "a", "b")] == (20.0, 1)
        assert recorder.total_ns() == 100.0
        assert recorder.depth == 0

    def test_self_time_subtracts_direct_children(self):
        self_ns = recorded().self_ns()
        assert self_ns[("iteration",)] == pytest.approx(50.0)
        assert self_ns[("iteration", "a")] == pytest.approx(30.0)
        assert self_ns[("iteration", "a", "b")] == pytest.approx(20.0)

    def test_span_contextmanager_pops_on_error(self):
        clock = FakeClock()
        recorder = SpanRecorder(clock)
        with pytest.raises(RuntimeError):
            with recorder.span("x"):
                clock.now = 5.0
                raise RuntimeError("boom")
        assert recorder.depth == 0
        assert recorder.folded()[("x",)] == (5.0, 1)

    def test_pop_n_and_reset(self):
        clock = FakeClock()
        recorder = SpanRecorder(clock)
        recorder.push("a")
        recorder.push("b")
        recorder.pop_n(2)
        assert recorder.depth == 0
        recorder.reset()
        assert recorder.folded() == {}

    def test_folded_text_format(self):
        text = recorded().to_folded_text()
        assert "iteration;a;b 20" in text.splitlines()


class TestRendering:
    def test_flamegraph_nests_and_scales(self):
        out = render_flamegraph(recorded())
        lines = out.splitlines()
        assert lines[0].startswith("flamegraph")
        assert "iteration" in lines[1] and "100.00%" in lines[1]
        # Children are indented under their parent, hottest first.
        assert lines[2].index("a") > lines[1].index("iteration")
        assert "(no spans recorded)" == render_flamegraph(SpanRecorder(FakeClock()))

    def test_top_sorts_by_self_time(self):
        out = render_top(recorded())
        rows = out.splitlines()[2:]
        assert rows[0].endswith("iteration")
        assert "50.00%" in rows[0]

    def test_json_and_csv_exports(self):
        recorder = recorded()
        doc = json.loads(spans_to_json(recorder))
        assert doc["total_ns"] == 100.0
        stacks = {record["stack"]: record for record in doc["spans"]}
        assert stacks["iteration;a"]["count"] == 2
        rows = list(csv.DictReader(io.StringIO(spans_to_csv(recorder))))
        assert rows[0]["stack"] == "iteration"
        assert float(rows[0]["inclusive_ns"]) == 100.0


class TestDriverIntegration:
    def test_run_records_the_pipeline_shape(self):
        binary = build(config=router())
        binary.driver.run_batches(30)
        recorder = binary.telemetry.spans
        paths = set(recorder.folded())
        assert ("iteration",) in paths
        assert ("iteration", "pmd.rx") in paths
        assert ("iteration", "pmd.rx", "dma") in paths
        assert ("iteration", "pmd.rx", "convert") in paths
        # At least one per-element span nested under the iteration.
        element_frames = {p for p in paths if len(p) >= 2 and p[1] not in ("pmd.rx", "pmd.tx")}
        assert element_frames
        assert recorder.depth == 0
        # The flamegraph of a real run renders without error.
        assert "iteration" in binary.telemetry.flamegraph()
