"""Conservation: attributed costs tile the run and sum to its totals."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nfs import forwarder, router
from repro.faults import ALL_KINDS, FaultSchedule, FaultSpec
from repro.hw.params import MachineParams
from repro.telemetry.attribution import DRIVER_BUCKET, TRACKED, CycleAttribution
from repro.telemetry.registry import CounterRegistry

from tests.telemetry.conftest import build

pytestmark = pytest.mark.telemetry

RUN_BATCHES = 40

#: Integer event counts conserve exactly; cycles/instructions are floats
#: and conserve to accumulation error.
INTEGER_METRICS = ("l1_hits", "l2_hits", "llc_loads", "llc_hits", "llc_misses")


def assert_conserved(binary):
    """Attributed bucket totals must sum to the core's run totals."""
    attribution = binary.telemetry.attribution
    cpu = binary.cpu
    assert math.isclose(
        attribution.total("cycles"), cpu.total_cycles(), rel_tol=1e-9, abs_tol=1e-6
    )
    assert math.isclose(
        attribution.total("instructions"), cpu.instructions,
        rel_tol=1e-9, abs_tol=1e-6,
    )
    counters = cpu.counters
    for metric in INTEGER_METRICS:
        assert attribution.total(metric) == getattr(counters, metric), metric


class TestConservation:
    @pytest.mark.parametrize("config", [forwarder, router])
    def test_buckets_sum_to_run_totals(self, config):
        binary = build(config=config())
        binary.driver.run_batches(RUN_BATCHES)
        assert_conserved(binary)

    def test_conservation_survives_reset(self):
        binary = build()
        binary.driver.run_batches(RUN_BATCHES)
        binary.reset_measurements()
        binary.driver.run_batches(RUN_BATCHES)
        assert_conserved(binary)

    def test_buckets_cover_the_active_pipeline(self):
        binary = build(config=router())
        binary.driver.run_batches(RUN_BATCHES)
        buckets = binary.telemetry.attribution.buckets()
        assert DRIVER_BUCKET in buckets
        assert "pmd.rx" in buckets and "pmd.tx" in buckets
        # Only known owners appear: the driver, the PMDs, and elements.
        element_names = {e.name for e in binary.graph.all_elements()}
        element_buckets = set()
        for bucket in buckets:
            if bucket in (DRIVER_BUCKET, "pmd.rx", "pmd.tx"):
                continue
            assert bucket.startswith("element.")
            assert bucket[len("element."):] in element_names
            element_buckets.add(bucket)
        # Elements that saw packets got charged (idle branches -- the
        # ARP responder on a data-only trace -- correctly get nothing).
        assert len(element_buckets) >= 3

    def test_attribution_lands_in_the_registry(self):
        binary = build(config=router())
        binary.driver.run_batches(RUN_BATCHES)
        registry = binary.telemetry.registry
        per_element = registry.match("element.*.cycles")
        assert per_element
        attribution = binary.telemetry.attribution
        totals = attribution.totals("cycles")
        for name, value in per_element.items():
            bucket = name[: -len(".cycles")]
            assert totals[bucket] == value


@settings(max_examples=10, deadline=None)
@given(
    kinds=st.lists(st.sampled_from(ALL_KINDS), min_size=1, max_size=3),
    probability=st.floats(0.05, 1.0, allow_nan=False),
    seed=st.integers(0, 2**32 - 1),
)
def test_conservation_under_fault_schedules(kinds, probability, seed):
    """Degraded paths (drops, resets, backpressure) still tile the run."""
    schedule = FaultSchedule(
        [FaultSpec(kind=kind, probability=probability) for kind in kinds],
        seed=seed,
    )
    binary = build(
        faults=schedule,
        params=MachineParams(rx_ring_size=64, tx_ring_size=64),
    )
    binary.driver.run_batches(RUN_BATCHES)
    assert_conserved(binary)


class TestReading:
    def make_synthetic(self):
        class FakeCounters:
            l1_hits = l2_hits = llc_loads = llc_hits = llc_misses = 0

        class FakeCpu:
            def __init__(self):
                self.counters = FakeCounters()
                self.instructions = 0.0
                self._cycles = 0.0

            def total_cycles(self):
                return self._cycles

        registry = CounterRegistry()
        attribution = CycleAttribution(registry)
        cpu = FakeCpu()
        attribution.bind(cpu)
        return attribution, cpu

    def test_top_orders_and_shares(self):
        attribution, cpu = self.make_synthetic()
        cpu._cycles = 30.0
        attribution.sync("element.a")
        cpu._cycles = 100.0
        attribution.sync("element.b")
        rows = attribution.top("cycles")
        assert [r[0] for r in rows] == ["element.b", "element.a"]
        assert rows[0][1] == pytest.approx(70.0)
        assert rows[0][2] == pytest.approx(0.7)
        table = attribution.format_top("cycles")
        assert "element.b" in table.splitlines()[2]

    def test_rebase_skips_attribution(self):
        attribution, cpu = self.make_synthetic()
        cpu._cycles = 50.0
        attribution.rebase()
        cpu._cycles = 60.0
        attribution.sync("element.a")
        assert attribution.totals("cycles") == {"element.a": pytest.approx(10.0)}

    def test_to_records_covers_tracked_metrics(self):
        attribution, cpu = self.make_synthetic()
        cpu._cycles = 5.0
        attribution.sync("element.a")
        (record,) = attribution.to_records()
        assert record["bucket"] == "element.a"
        assert set(record) == {"bucket", *TRACKED}
