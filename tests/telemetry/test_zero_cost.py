"""Telemetry must observe, never perturb: on/off runs are bit-identical."""

import pytest

from repro.core.nfs import forwarder, router
from repro.core.packetmill import PacketMill
from repro.experiments import fig01
from repro.telemetry import TelemetryConfig

from tests.experiments.test_experiments import TINY
from tests.telemetry.conftest import build

pytestmark = pytest.mark.telemetry


def measurement_tuple(run):
    """Every numeric output a figure/report could consume."""
    return (
        run.packets,
        run.tx_packets,
        run.tx_bytes,
        run.drops,
        run.elapsed_ns,
        run.instructions,
        run.total_cycles,
        run.counters,
    )


class TestBitIdentical:
    @pytest.mark.parametrize("config", [forwarder, router])
    def test_measured_run_identical_with_telemetry_on_and_off(self, config):
        on = build(config=config(), telemetry=TelemetryConfig(), seed=5)
        off = build(config=config(), telemetry=None, seed=5)
        run_on = on.measure(batches=80, warmup_batches=40)
        run_off = off.measure(batches=80, warmup_batches=40)
        assert measurement_tuple(run_on) == measurement_tuple(run_off)
        assert run_on.stats == run_off.stats

    def test_fig01_is_deterministic_with_telemetry_disabled(self):
        first = fig01.run(TINY)
        second = fig01.run(TINY)
        assert first.to_json() == second.to_json()
        assert fig01.format_table(first) == fig01.format_table(second)


class TestDisabledSurface:
    def test_default_build_has_no_recorders(self):
        binary = build(telemetry=None)
        telemetry = binary.telemetry
        assert not telemetry.enabled
        assert telemetry.sampler is None
        assert telemetry.attribution is None
        assert telemetry.spans is None
        # Counter storage is still live (it IS the stats).
        binary.driver.run_batches(10)
        assert telemetry.registry.get("driver.batches") == 10
        # Rendering degrades gracefully instead of raising.
        assert telemetry.flamegraph() == "(spans disabled)"
        assert telemetry.top() == "(attribution disabled)"
        assert telemetry.windows_table() == "(window sampling disabled)"

    def test_config_knobs_gate_each_recorder(self):
        mill_config = TelemetryConfig(windows=False, attribution=True, spans=False)
        binary = build(telemetry=mill_config)
        telemetry = binary.telemetry
        assert telemetry.sampler is None
        assert telemetry.attribution is not None
        assert telemetry.spans is None
        binary.driver.run_batches(10)
        assert telemetry.attribution.buckets()

    def test_telemetry_true_enables_everything(self):
        mill = PacketMill(forwarder(), telemetry=True)
        binary = mill.build()
        assert binary.telemetry.enabled
        assert binary.telemetry.sampler is not None
        assert binary.telemetry.attribution is not None
        assert binary.telemetry.spans is not None
