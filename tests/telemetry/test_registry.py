"""CounterRegistry: handles, kinds, mounts, globs, scopes, snapshots."""

import pytest

from repro.telemetry.registry import (
    COUNTER,
    GAUGE,
    Counter,
    CounterRegistry,
    TelemetryError,
    delta,
    is_glob,
    merge,
)

pytestmark = pytest.mark.telemetry


class TestHandles:
    def test_counter_is_the_storage(self):
        registry = CounterRegistry()
        handle = registry.counter("driver.rx_packets")
        handle.value += 5
        assert registry.get("driver.rx_packets") == 5
        assert registry.counter("driver.rx_packets") is handle

    def test_counter_rejects_negative_add(self):
        handle = Counter("x")
        handle.add(3)
        with pytest.raises(TelemetryError):
            handle.add(-1)
        assert handle.value == 3

    def test_gauge_moves_both_ways(self):
        registry = CounterRegistry()
        gauge = registry.gauge("queue.depth")
        gauge.add(4)
        gauge.add(-3)
        gauge.set(10)
        assert registry.get("queue.depth") == 10

    def test_kind_mismatch_raises(self):
        registry = CounterRegistry()
        registry.counter("a.b")
        with pytest.raises(TelemetryError):
            registry.gauge("a.b")
        assert registry.kind_of("a.b") == COUNTER
        assert registry.kind_of("missing") is None

    def test_contains_and_default(self):
        registry = CounterRegistry()
        registry.counter("x.y")
        assert "x.y" in registry
        assert "x.z" not in registry
        assert registry.get("x.z", default=-1) == -1


class TestMounts:
    def test_mounted_counters_share_storage(self):
        inner = CounterRegistry()
        handle = inner.counter("llc_misses")
        outer = CounterRegistry()
        outer.mount("cpu", inner)
        handle.value = 42
        assert outer.get("cpu.llc_misses") == 42
        # Creating through the outer name resolves to the same handle.
        assert outer.counter("cpu.llc_misses") is handle

    def test_mounted_names_are_flattened(self):
        inner = CounterRegistry()
        inner.counter("l1_hits")
        outer = CounterRegistry()
        outer.counter("driver.batches")
        outer.mount("cpu", inner)
        assert outer.names() == ["cpu.l1_hits", "driver.batches"]
        assert "cpu.l1_hits" in outer

    def test_mount_prefix_must_be_literal(self):
        outer = CounterRegistry()
        with pytest.raises(TelemetryError):
            outer.mount("cpu.*", CounterRegistry())
        with pytest.raises(TelemetryError):
            outer.mount("", CounterRegistry())

    def test_reset_prefix_crosses_mounts(self):
        inner = CounterRegistry()
        inner.counter("l1_hits").value = 7
        outer = CounterRegistry()
        outer.counter("driver.batches").value = 3
        outer.mount("cpu", inner)
        outer.reset("cpu.")
        assert outer.get("cpu.l1_hits") == 0
        assert outer.get("driver.batches") == 3
        outer.reset()
        assert outer.get("driver.batches") == 0


class TestGlobs:
    def test_is_glob(self):
        assert is_glob("nic.*.imissed")
        assert is_glob("a?c")
        assert not is_glob("nic.0.imissed")

    def test_match(self):
        registry = CounterRegistry()
        registry.counter("nic.0.imissed").value = 1
        registry.counter("nic.1.imissed").value = 2
        registry.counter("nic.0.rx_errors").value = 9
        assert registry.match("nic.*.imissed") == {
            "nic.0.imissed": 1,
            "nic.1.imissed": 2,
        }

    def test_snapshot_is_sorted_and_plain(self):
        registry = CounterRegistry()
        registry.counter("b").value = 2
        registry.counter("a").value = 1
        snap = registry.snapshot()
        assert list(snap) == ["a", "b"]
        assert snap == {"a": 1, "b": 2}


class TestScopes:
    def test_scope_prefixes_and_strips(self):
        registry = CounterRegistry()
        scope = registry.scope("element.rt")
        scope.counter("drops").value = 4
        assert registry.get("element.rt.drops") == 4
        assert scope.snapshot() == {"drops": 4}
        scope.reset()
        assert registry.get("element.rt.drops") == 0


class TestSnapshotAlgebra:
    def test_delta(self):
        old = {"a": 1, "b": 5}
        new = {"a": 4, "b": 5, "c": 2}
        assert delta(new, old) == {"a": 3, "b": 0, "c": 2}

    def test_merge(self):
        snaps = [{"a": 1, "b": 2}, {"a": 10, "c": 3}]
        assert merge(snaps) == {"a": 11, "b": 2, "c": 3}
