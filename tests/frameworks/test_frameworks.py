"""Tests for the baseline frameworks (§4.6 comparison set)."""

import pytest

from repro.frameworks import (
    FRAMEWORK_BUILDERS,
    bess_forwarder,
    fastclick_forwarder,
    l2fwd,
    l2fwd_xchg,
    packetmill_forwarder,
    vpp_forwarder,
)
from repro.hw.params import MachineParams
from repro.perf.runner import measure_throughput

PARAMS = MachineParams(freq_ghz=1.2)


def rate(builder, frame=256, **kwargs):
    binary = builder(PARAMS, frame, **kwargs)
    return measure_throughput(binary, batches=80, warmup_batches=40)


class TestL2fwd:
    def test_forwards_packets(self):
        app = l2fwd(PARAMS, 256)
        app.warmup(10)
        run = app.run(20)
        assert run.packets == 640
        assert run.tx_packets == 640
        assert run.tx_bytes == 640 * 256

    def test_l2fwd_xchg_uses_minimal_metadata(self):
        app = l2fwd_xchg(PARAMS, 256)
        assert len(app.model.conversions.targets) == 2
        assert app.model.name == "xchange"

    def test_l2fwd_xchg_faster(self):
        plain = rate(l2fwd)
        xchg = rate(l2fwd_xchg)
        assert xchg.cpu_pps > plain.cpu_pps * 1.2

    def test_measure_interface(self):
        app = l2fwd(PARAMS, 128)
        run = app.measure(batches=30, warmup_batches=10)
        assert run.ns_per_packet > 0
        assert run.mean_frame_len == 128


class TestFrameworkRelationships:
    def test_registry_complete(self):
        assert len(FRAMEWORK_BUILDERS) == 7

    def test_all_builders_produce_measurable(self):
        for name, builder in FRAMEWORK_BUILDERS.items():
            point = rate(builder)
            assert point.pps > 0, name

    def test_overlaying_frameworks_beat_copying(self):
        fastclick = rate(fastclick_forwarder)
        bess = rate(bess_forwarder)
        assert bess.cpu_pps > fastclick.cpu_pps

    def test_vpp_close_to_fastclick(self):
        fastclick = rate(fastclick_forwarder)
        vpp = rate(vpp_forwarder)
        assert 0.7 < vpp.cpu_pps / fastclick.cpu_pps < 1.3

    def test_packetmill_beats_l2fwd(self):
        """The paper's punchline: the full modular framework with X-Change
        outruns the minimal hand-written DPDK app."""
        pm = rate(packetmill_forwarder)
        plain = rate(l2fwd)
        assert pm.cpu_pps > plain.cpu_pps

    def test_packetmill_is_best_framework(self):
        pm = rate(packetmill_forwarder)
        for builder in (fastclick_forwarder, bess_forwarder, vpp_forwarder):
            assert pm.cpu_pps > rate(builder).cpu_pps
