"""PacketMill(analyze=...) and the verifier-in-pipeline debug mode."""

import pytest

from repro.core.nfs import forwarder, router
from repro.core.options import BuildOptions
from repro.core.packetmill import BuildError, PacketMill
from repro.exec import cache as exec_cache
from repro.hw.params import MachineParams

pytestmark = pytest.mark.analyze

SHADOWED = (
    "input :: FromDPDKDevice(PORT 0);"
    "output :: ToDPDKDevice(PORT 0);"
    "c :: IPClassifier(-, tcp);"
    "input -> c; c[0] -> output; c[1] -> output;"
)


@pytest.fixture(autouse=True)
def fresh_caches():
    exec_cache.reset_caches()
    yield
    exec_cache.reset_caches()


def _mill(config, **kwargs):
    return PacketMill(config, BuildOptions.packetmill(),
                      params=MachineParams().at_frequency(2.3), **kwargs)


def test_analyze_error_mode_builds_clean_configs():
    binary = _mill(router(), analyze="error").build()
    assert binary.analysis is not None
    assert binary.analysis.ok


def test_analyze_error_mode_refuses_unsound_configs():
    with pytest.raises(BuildError, match="classifier-shadowed-rule"):
        _mill(SHADOWED, analyze="error").build()


def test_analyze_warn_mode_attaches_report_without_gating():
    binary = _mill(SHADOWED, analyze="warn").build()
    assert binary.analysis is not None
    assert not binary.analysis.ok


def test_analyze_defaults_off():
    binary = _mill(router()).build()
    assert binary.analysis is None


def test_environment_variable_opts_in(monkeypatch):
    monkeypatch.setenv("REPRO_ANALYZE", "warn")
    binary = _mill(router()).build()
    assert binary.analysis is not None


def test_findings_are_counted_in_telemetry():
    binary = _mill(router(), analyze="error").build()
    registry = binary.telemetry.registry
    total = registry.counter("analyze.findings").value
    assert total == len(binary.analysis.findings) > 0
    assert registry.counter("analyze.error").value == 0
    assert (
        registry.counter("analyze.rule.meta-dead-store").value
        == len(binary.analysis.by_rule("meta-dead-store"))
    )


def test_verifier_runs_in_pipeline_with_zero_violations():
    # Acceptance bar: across every pass of the full PacketMill pipeline,
    # the attached verifier sees zero violations for shipped configs.
    for config in (forwarder(), router()):
        exec_cache.reset_caches()
        binary = _mill(config, analyze="error").build()
        assert binary.pass_manager.verifier is not None
        assert binary.pass_manager.records, "passes ran with verifier attached"


def test_mill_analysis_is_cached_per_instance():
    mill = _mill(router(), analyze="error")
    assert mill.analysis() is mill.analysis()


def test_unknown_analyze_mode_is_rejected():
    with pytest.raises(BuildError, match="unknown analyze mode"):
        _mill(router(), analyze="loud")
