"""IR verifier: structural invariants, pool balance, pass debug mode."""

import pytest

from repro.analyze import (
    ERROR,
    NOTE,
    VerifierError,
    assert_verified,
    attach_verifier,
    verify_exec_program,
    verify_pool_pair,
    verify_program,
)
from repro.compiler.ir import (
    BranchHint,
    Compute,
    DataAccess,
    FieldAccess,
    PoolOp,
    Program,
    StateAccess,
)
from repro.compiler.lower import lower
from repro.compiler.pipeline import PassManager
from repro.compiler.structlayout import LayoutRegistry
from repro.dpdk.metadata import CopyingModel

pytestmark = pytest.mark.analyze


@pytest.fixture
def registry():
    reg = LayoutRegistry()
    CopyingModel().register_layouts(reg)
    return reg


def rules(findings):
    return [f.rule for f in findings]


def test_clean_program_verifies_clean(registry):
    program = Program("p", [
        FieldAccess("Packet", "length"),
        DataAccess(12, 2),
        Compute(10),
        BranchHint(0.1),
    ])
    assert verify_program(program, registry) == []


def test_unknown_field_and_struct_are_errors(registry):
    program = Program("p", [
        FieldAccess("Packet", "no_such_field"),
        FieldAccess("NoSuchStruct", "x"),
    ])
    findings = verify_program(program, registry)
    assert rules(findings) == ["ir-unknown-field", "ir-unknown-struct"]
    assert all(f.severity == ERROR for f in findings)


def test_data_access_outside_frame_is_an_error(registry):
    program = Program("p", [DataAccess(2040, 16)])
    assert rules(verify_program(program, registry)) == ["ir-data-bounds"]


def test_state_bounds_checked_only_with_known_size(registry):
    program = Program("p", [StateAccess(60, 16)])
    assert verify_program(program, registry) == []
    findings = verify_program(program, registry, state_size=64)
    assert rules(findings) == ["ir-state-bounds"]


def test_bad_probability_and_negative_cost(registry):
    program = Program("p", [BranchHint(1.5), Compute(-3)])
    assert rules(verify_program(program, registry)) == [
        "ir-bad-probability", "ir-negative-cost",
    ]


def test_pool_imbalance_severity_is_configurable(registry):
    program = Program("p", [PoolOp("get")])
    (finding,) = verify_program(program, registry)
    assert (finding.rule, finding.severity) == ("ir-pool-balance", ERROR)
    (finding,) = verify_program(program, registry, pool_balance=NOTE)
    assert finding.severity == NOTE


def test_pool_pair_balances_across_rx_and_tx(registry):
    rx = Program("rx", [PoolOp("get"), PoolOp("get")])
    tx = Program("tx", [PoolOp("put"), PoolOp("put")])
    assert verify_pool_pair(rx, tx) == []
    assert rules(verify_pool_pair(rx, Program("tx", [PoolOp("put")]))) == [
        "ir-pool-balance",
    ]


def test_pmd_programs_pool_pair_is_balanced(registry):
    model = CopyingModel()
    assert verify_pool_pair(model.rx_program(), model.tx_program()) == []


def test_lowered_program_verifies_clean(registry):
    program = Program("p", [
        FieldAccess("Packet", "length", write=True),
        DataAccess(0, 64),
        Compute(25),
    ])
    exec_program = lower(program, registry)
    assert verify_exec_program(exec_program, registry) == []


def test_assert_verified_raises_with_findings(registry):
    program = Program("p", [FieldAccess("Packet", "bogus")])
    with pytest.raises(VerifierError) as excinfo:
        assert_verified(program, registry)
    assert excinfo.value.findings
    assert "bogus" in str(excinfo.value)


# -- debug mode: the pass pipeline names the offending pass -------------------


def _breaking_pass(program):
    return program.replaced(
        list(program.ops) + [FieldAccess("Packet", "invented_by_pass")]
    )


def test_attach_verifier_names_the_breaking_pass(registry):
    manager = PassManager()
    manager.add("identity", lambda p: p)
    manager.add("bad-pass", _breaking_pass)
    attach_verifier(manager, registry)
    with pytest.raises(VerifierError) as excinfo:
        manager.run(Program("p", [Compute(5)]))
    message = str(excinfo.value)
    assert "bad-pass" in message
    assert "invented_by_pass" in message


def test_attach_verifier_passes_clean_pipeline(registry):
    manager = PassManager()
    manager.add("identity", lambda p: p)
    attach_verifier(manager, registry)
    out = manager.run(Program("p", [Compute(5)]))
    assert len(out) == 1


def test_attach_verifier_collect_mode_accumulates(registry):
    collected = []
    manager = PassManager()
    manager.add("bad-pass", _breaking_pass)
    attach_verifier(manager, registry, collect=collected.extend)
    manager.run(Program("p", [Compute(5)]))
    assert rules(collected) == ["ir-unknown-field"]
    assert "bad-pass" in collected[0].location
