"""CLI: python -m repro.analyze over files and shipped configurations."""

import json
import subprocess
import sys

import pytest

from repro.analyze.cli import (
    main,
    shipped_configs,
    shipped_runtime_pairings,
)
from repro.core import nfs

pytestmark = pytest.mark.analyze


def test_shipped_catalog_covers_the_evaluation_nfs():
    names = set(shipped_configs())
    assert {"forwarder", "router", "ids-router", "nat-router",
            "guarded-router"} <= names


def test_shipped_catalog_covers_sharded_and_steered_profiles():
    names = set(shipped_configs())
    assert {"forwarder-sharded", "nat-sharded",
            "forwarder-steered", "nat-steered"} <= names
    pairings = shipped_runtime_pairings()
    assert pairings["nat-sharded"].n_cores == 4
    assert pairings["forwarder-steered"].rss.steering.dispatch
    # nat-steered runs steering without dispatch: it must warn about
    # migration, never error -- keeping --shipped green.
    assert not pairings["nat-steered"].rss.steering.dispatch


def test_all_shipped_configs_are_error_free(capsys):
    assert main(["--shipped"]) == 0
    out = capsys.readouterr().out
    assert "analysis of router" in out
    assert "0 error" in out


def test_single_named_config(capsys):
    assert main(["router"]) == 0
    assert "analysis of router" in capsys.readouterr().out


def test_json_output_is_parseable(capsys):
    assert main(["forwarder", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["subject"] == "forwarder"
    assert isinstance(payload["findings"], list)


def test_fail_on_note_exits_nonzero_for_router(capsys):
    # The router carries benign notes (dangling drop port, dead
    # annotation store), so lowering the threshold must flip the exit.
    assert main(["router", "--fail-on", "note"]) == 1


def test_config_file_path_is_analyzed(tmp_path, capsys):
    path = tmp_path / "fwd.click"
    path.write_text(nfs.forwarder())
    assert main([str(path)]) == 0
    assert "analysis of %s" % path in capsys.readouterr().out


def test_broken_config_is_a_parse_error_finding(tmp_path, capsys):
    path = tmp_path / "broken.click"
    path.write_text("input :: NoSuchElementClass; input -> input;")
    assert main([str(path)]) == 1
    assert "config-parse-error" in capsys.readouterr().out


def test_shadowed_rules_fail_the_default_threshold(tmp_path, capsys):
    path = tmp_path / "shadowed.click"
    path.write_text(
        "input :: FromDPDKDevice(PORT 0);"
        "output :: ToDPDKDevice(PORT 0);"
        "c :: IPClassifier(-, tcp);"
        "input -> c; c[0] -> output; c[1] -> output;"
    )
    assert main([str(path)]) == 1
    assert "classifier-shadowed-rule" in capsys.readouterr().out


def test_unknown_name_exits_with_help():
    with pytest.raises(SystemExit):
        main(["definitely-not-a-config"])


def test_unknown_options_variant_is_rejected():
    with pytest.raises(SystemExit):
        main(["router", "--options", "warp-speed"])


def test_nat_steered_warns_but_stays_green(capsys):
    assert main(["nat-steered"]) == 0
    out = capsys.readouterr().out
    assert "shard-stateful-migration" in out
    assert "shard-stateful-dispatch" not in out


def test_dispatch_override_fails_the_stateful_nat(capsys):
    assert main(["nat-router", "--cores", "4", "--steering",
                 "--dispatch"]) == 1
    assert "shard-stateful-dispatch" in capsys.readouterr().out


def test_steering_without_dispatch_stays_green(capsys):
    assert main(["nat-router", "--cores", "4", "--steering"]) == 0
    assert "shard-stateful-migration" in capsys.readouterr().out


def test_cores_alone_is_safe_for_flow_local_state(capsys):
    assert main(["nat-router", "--cores", "4"]) == 0
    assert "shard-" not in capsys.readouterr().out


def test_guarded_router_reports_constant_branches(capsys):
    assert main(["guarded-router"]) == 0
    out = capsys.readouterr().out
    assert "constant-branch" in out
    assert "redundant-check" in out
    assert "meta-use-before-init" not in out


def test_sarif_output_is_one_combined_log(capsys):
    assert main(["guarded-router", "nat-steered", "--sarif"]) == 0
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    assert log["$schema"].endswith("sarif-2.1.0.json")
    assert len(log["runs"]) == 2
    subjects = [run["properties"]["subject"] for run in log["runs"]]
    assert subjects == ["guarded-router", "nat-steered"]
    run = log["runs"][0]
    rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert "constant-branch" in rules
    result = run["results"][0]
    assert {"ruleId", "level", "message", "locations"} <= set(result)


def test_sarif_exit_code_still_gates(capsys):
    code = main(["nat-router", "--cores", "4", "--steering",
                 "--dispatch", "--sarif"])
    assert code == 1
    log = json.loads(capsys.readouterr().out)
    levels = [r["level"] for r in log["runs"][0]["results"]]
    assert "error" in levels


def test_all_shipped_configs_stay_green_under_their_pairings():
    # The analyze-strict CI job: every shipped config, its paired
    # runtime profile, zero errors.
    assert main(["--shipped"]) == 0


def test_module_entry_point_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analyze", "forwarder"],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert "finding(s)" in proc.stdout
