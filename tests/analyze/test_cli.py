"""CLI: python -m repro.analyze over files and shipped configurations."""

import json
import subprocess
import sys

import pytest

from repro.analyze.cli import main, shipped_configs
from repro.core import nfs

pytestmark = pytest.mark.analyze


def test_shipped_catalog_covers_the_evaluation_nfs():
    names = set(shipped_configs())
    assert {"forwarder", "router", "ids-router", "nat-router"} <= names


def test_all_shipped_configs_are_error_free(capsys):
    assert main(["--shipped"]) == 0
    out = capsys.readouterr().out
    assert "analysis of router" in out
    assert "0 error" in out


def test_single_named_config(capsys):
    assert main(["router"]) == 0
    assert "analysis of router" in capsys.readouterr().out


def test_json_output_is_parseable(capsys):
    assert main(["forwarder", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["subject"] == "forwarder"
    assert isinstance(payload["findings"], list)


def test_fail_on_note_exits_nonzero_for_router(capsys):
    # The router carries benign notes (dangling drop port, dead
    # annotation store), so lowering the threshold must flip the exit.
    assert main(["router", "--fail-on", "note"]) == 1


def test_config_file_path_is_analyzed(tmp_path, capsys):
    path = tmp_path / "fwd.click"
    path.write_text(nfs.forwarder())
    assert main([str(path)]) == 0
    assert "analysis of %s" % path in capsys.readouterr().out


def test_broken_config_is_a_parse_error_finding(tmp_path, capsys):
    path = tmp_path / "broken.click"
    path.write_text("input :: NoSuchElementClass; input -> input;")
    assert main([str(path)]) == 1
    assert "config-parse-error" in capsys.readouterr().out


def test_shadowed_rules_fail_the_default_threshold(tmp_path, capsys):
    path = tmp_path / "shadowed.click"
    path.write_text(
        "input :: FromDPDKDevice(PORT 0);"
        "output :: ToDPDKDevice(PORT 0);"
        "c :: IPClassifier(-, tcp);"
        "input -> c; c[0] -> output; c[1] -> output;"
    )
    assert main([str(path)]) == 1
    assert "classifier-shadowed-rule" in capsys.readouterr().out


def test_unknown_name_exits_with_help():
    with pytest.raises(SystemExit):
        main(["definitely-not-a-config"])


def test_unknown_options_variant_is_rejected():
    with pytest.raises(SystemExit):
        main(["router", "--options", "warp-speed"])


def test_module_entry_point_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analyze", "forwarder"],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert "finding(s)" in proc.stdout
