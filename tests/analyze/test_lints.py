"""Graph lints: shadowed rules, unconnected inputs, reachability."""

import pytest

from repro.analyze import ERROR, lint_graph
from repro.analyze.lints import (
    lint_dangling_outputs,
    lint_shadowed_rules,
    lint_sources,
    lint_unconnected_inputs,
    lint_unreachable,
)
from repro.click.config.lexer import ConfigError
from repro.click.graph import ProcessingGraph
from repro.core import nfs
from repro.core.options import BuildOptions
from repro.core.packetmill import BuildError, PacketMill
from repro.exec import cache as exec_cache
from repro.hw.params import MachineParams

pytestmark = pytest.mark.analyze


def _graph(config):
    return ProcessingGraph.from_text(config)


def _rules(findings):
    return [f.rule for f in findings]


# -- shadowed classifier rules (satellite regression) -------------------------


def test_classifier_duplicate_pattern_is_shadowed():
    graph = _graph(
        "input :: FromDPDKDevice(PORT 0);"
        "c :: Classifier(12/0800, 12/0800 20/0001, -);"
        "input -> c; c[0] -> Discard; c[1] -> Discard; c[2] -> Discard;"
    )
    findings = lint_shadowed_rules(graph)
    assert _rules(findings) == ["classifier-shadowed-rule"]
    assert findings[0].severity == ERROR
    assert "rule 1 is fully shadowed by earlier rule 0" in findings[0].message


def test_classifier_catchall_shadows_everything_after_it():
    graph = _graph(
        "input :: FromDPDKDevice(PORT 0);"
        "c :: Classifier(-, 12/0800);"
        "input -> c; c[0] -> Discard; c[1] -> Discard;"
    )
    (finding,) = lint_shadowed_rules(graph)
    assert "rule 1" in finding.message


def test_classifier_disjoint_patterns_are_not_shadowed():
    graph = _graph(
        "input :: FromDPDKDevice(PORT 0);"
        "c :: Classifier(12/0800, 12/0806, -);"
        "input -> c; c[0] -> Discard; c[1] -> Discard; c[2] -> Discard;"
    )
    assert lint_shadowed_rules(graph) == []


def test_ipclassifier_catchall_and_duplicates_shadow():
    graph = _graph(
        "input :: FromDPDKDevice(PORT 0);"
        "c :: IPClassifier(tcp, -, udp, tcp);"
        "input -> c; c[0] -> Discard; c[1] -> Discard;"
        "c[2] -> Discard; c[3] -> Discard;"
    )
    findings = lint_shadowed_rules(graph)
    # "-" (rule 1) shadows udp (2); tcp (0) shadows the duplicate tcp (3).
    assert {(f.message.split()[1]) for f in findings} == {"2", "3"}


# -- unconnected inputs (satellite: build-time detection) ---------------------


UNWIRED = (
    "input :: FromDPDKDevice(PORT 0);"
    "output :: ToDPDKDevice(PORT 0);"
    "orphan :: EtherMirror;"
    "input -> output;"
)


def test_unconnected_input_lint_names_element_and_port():
    (finding,) = lint_unconnected_inputs(_graph(UNWIRED))
    assert finding.rule == "graph-unconnected-input"
    assert finding.subject == "orphan"
    assert "[0]" in finding.message


def test_check_required_inputs_raises_config_error():
    with pytest.raises(ConfigError) as excinfo:
        _graph(UNWIRED).check_required_inputs()
    message = str(excinfo.value)
    assert "orphan" in message and "[0]" in message and "EtherMirror" in message


def test_build_rejects_unwired_inputs():
    exec_cache.reset_caches()
    mill = PacketMill(UNWIRED, BuildOptions.vanilla(),
                      params=MachineParams().at_frequency(2.3))
    with pytest.raises(ConfigError, match="orphan"):
        mill.build()


def test_fully_wired_config_passes_required_inputs():
    _graph(nfs.router()).check_required_inputs()


# -- reachability and structure ----------------------------------------------


def test_unreachable_cycle_is_warned():
    # A cycle no source feeds: both elements have wired inputs (so the
    # unconnected-input check is silent) yet no packet can ever reach
    # them.
    config = (
        "input :: FromDPDKDevice(PORT 0);"
        "output :: ToDPDKDevice(PORT 0);"
        "a :: Queue(8); b :: EtherMirror;"
        "input -> output; a -> b; b -> a;"
    )
    findings = lint_unreachable(_graph(config))
    assert sorted(f.subject for f in findings) == ["a", "b"]
    assert all(f.severity == "warning" for f in findings)


def test_no_source_is_an_error():
    graph = _graph("a :: EtherMirror; b :: Discard; a -> b;")
    assert "graph-no-source" in _rules(lint_sources(graph))


def test_dangling_output_is_a_note():
    graph = _graph(nfs.router())
    findings = lint_dangling_outputs(graph)
    assert findings, "CheckIPHeader's bad-packet port should be open"
    assert all(f.severity == "note" for f in findings)


def test_shipped_configs_have_no_error_lints():
    for name, config in {
        "forwarder": nfs.forwarder(),
        "router": nfs.router(),
        "router-icmp": nfs.router(icmp_errors=True),
        "ids-router": nfs.ids_router(),
        "nat-router": nfs.nat_router(),
    }.items():
        errors = [f for f in lint_graph(_graph(config)) if f.severity == ERROR]
        assert not errors, (name, errors)
