"""Path-sensitive constant propagation: facts, port splitting, lints."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyze import ConstProp, MetadataDataflow, analyze_config
from repro.analyze.constprop import (
    ALWAYS,
    DEAD,
    Facts,
    MAYBE,
    NEVER,
    _kill,
    _refine,
    join_facts,
    match_predicate,
)
from repro.click.graph import ProcessingGraph
from repro.compiler.ir import Compute, DataAccess, FieldAccess, Program
from repro.core.nfs import guarded_router, router
from repro.core.options import BuildOptions
from repro.dpdk.metadata import CopyingModel

pytestmark = pytest.mark.analyze


# -- the abstract domain ------------------------------------------------------


def test_join_keeps_only_agreeing_constants():
    a = Facts.make(data={12: 0x08, 13: 0x00}, meta={"paint_anno": 1})
    b = Facts.make(data={12: 0x08, 13: 0x06}, meta={"paint_anno": 1})
    joined = a.join(b)
    assert joined.data_map == {12: 0x08}
    assert joined.meta_map == {"paint_anno": 1}


def test_join_widens_disagreeing_constants_to_an_interval():
    a = Facts.make(meta={"length": 64})
    b = Facts.make(meta={"length": 128})
    joined = a.join(b)
    assert "length" not in joined.meta_map
    assert joined.field_range("length") == (64, 128)


def test_join_takes_the_interval_hull():
    a = Facts.make(ranges={"length": (0, 128)})
    b = Facts.make(ranges={"length": (64, 512)})
    assert a.join(b).field_range("length") == (0, 512)


def test_join_with_unreachable_is_identity():
    facts = Facts.make(data={0: 1})
    assert join_facts(None, facts) == facts
    assert join_facts(facts, None) == facts
    assert join_facts(None, None) is None


def test_data_write_kills_only_overlapping_bytes():
    facts = Facts.make(data={0: 1, 6: 2, 12: 3})
    program = Program("w", [DataAccess(4, 4, write=True)])
    assert _kill(facts, program).data_map == {0: 1, 12: 3}


def test_pointer_write_kills_every_data_fact():
    facts = Facts.make(data={12: 0x08}, meta={"paint_anno": 1})
    program = Program("strip", [
        FieldAccess("Packet", "data_ptr", write=True),
    ])
    killed = _kill(facts, program)
    assert killed.data_map == {}
    assert killed.meta_map == {"paint_anno": 1}


def test_field_write_kills_that_field_only():
    facts = Facts.make(meta={"paint_anno": 1, "vlan_anno": 2})
    program = Program("p", [
        FieldAccess("Packet", "paint_anno", write=True),
    ])
    assert _kill(facts, program).meta_map == {"vlan_anno": 2}


def test_reads_kill_nothing():
    facts = Facts.make(data={12: 0x08}, meta={"paint_anno": 1})
    program = Program("r", [
        DataAccess(12, 2),
        FieldAccess("Packet", "paint_anno"),
        Compute(3),
    ])
    assert _kill(facts, program) == facts


# -- predicate matching -------------------------------------------------------


def test_catch_all_predicate_always_matches():
    assert match_predicate(Facts(), None) == (ALWAYS, 0, 0)


def test_data_term_verdicts():
    facts = Facts.make(data={12: 0x08})
    assert match_predicate(facts, {"data": {12: 0x08}})[0] == ALWAYS
    assert match_predicate(facts, {"data": {12: 0x06}})[0] == NEVER
    assert match_predicate(facts, {"data": {13: 0x00}})[0] == MAYBE


def test_conjunction_is_never_if_any_term_contradicts():
    facts = Facts.make(data={12: 0x08, 13: 0x06})
    status, _, total = match_predicate(
        facts, {"data": {12: 0x08, 13: 0x00}})
    assert status == NEVER
    assert total == 2


def test_range_term_verdicts():
    facts = Facts.make(ranges={"length": (64, 128)})
    assert match_predicate(facts, {"range": {"length": (0, 256)}})[0] == ALWAYS
    assert match_predicate(facts, {"range": {"length": (256, 512)}})[0] == NEVER
    assert match_predicate(facts, {"range": {"length": (100, 512)}})[0] == MAYBE


def test_refined_edge_implies_its_own_predicate():
    pred = {"data": {12: 0x08, 13: 0x06}, "meta": {"paint_anno": 1}}
    refined = _refine(Facts(), pred)
    status, implied, total = match_predicate(refined, pred)
    assert status == ALWAYS
    assert implied == total == 3


# -- per-port splitting over a graph ------------------------------------------


SPLIT = """
    input :: FromDPDKDevice(PORT 0);
    output :: ToDPDKDevice(PORT 0);
    c :: Classifier(12/0800, 12/0806, -);
    ipside :: Counter;
    arpside :: Counter;
    input -> c;
    c[0] -> ipside -> output;
    c[1] -> arpside -> output;
    c[2] -> Discard;
"""


def test_classifier_splits_facts_per_output_port():
    cp = ConstProp(ProcessingGraph.from_text(SPLIT))
    assert cp.in_facts["ipside"].data_map == {12: 0x08, 13: 0x00}
    assert cp.in_facts["arpside"].data_map == {12: 0x08, 13: 0x06}
    # The join at the shared output keeps only the agreed byte.
    assert cp.in_facts["output"].data_map == {12: 0x08}
    assert not cp.dead_edges


REGUARD = """
    input :: FromDPDKDevice(PORT 0);
    output :: ToDPDKDevice(PORT 0);
    c1 :: Classifier(12/0800, -);
    c2 :: Classifier(12/0800, -);
    input -> c1;
    c1[0] -> c2;
    c1[1] -> Discard;
    c2[0] -> output;
    c2[1] -> Discard;
"""


def test_repeated_guard_is_decided_and_its_fallthrough_shadowed():
    cp = ConstProp(ProcessingGraph.from_text(REGUARD))
    assert cp.port_status[("c2", 0)] == ALWAYS
    assert cp.port_status[("c2", 1)] == DEAD
    assert ("c2", 1) in cp.dead_edges
    assert cp.prunable() == {"c2": (0,)}


def test_paint_pins_the_paintswitch():
    config = """
    input :: FromDPDKDevice(PORT 0);
    output :: ToDPDKDevice(PORT 0);
    sw :: PaintSwitch(N 2);
    input -> Paint(1) -> sw;
    sw[0] -> Discard;
    sw[1] -> output;
    """
    cp = ConstProp(ProcessingGraph.from_text(config))
    assert cp.port_status[("sw", 0)] == NEVER
    assert cp.port_status[("sw", 1)] == ALWAYS
    assert ("sw", 0) in cp.dead_edges


def test_chained_length_switches_decide_the_second():
    config = """
    input :: FromDPDKDevice(PORT 0);
    output :: ToDPDKDevice(PORT 0);
    ls1 :: LengthSwitch(THRESHOLD 128);
    ls2 :: LengthSwitch(THRESHOLD 256);
    input -> ls1;
    ls1[0] -> ls2;
    ls1[1] -> Discard;
    ls2[0] -> output;
    ls2[1] -> Discard;
    """
    cp = ConstProp(ProcessingGraph.from_text(config))
    # length <= 128 on ls1[0] implies length <= 256 at ls2.
    assert cp.port_status[("ls2", 0)] == ALWAYS
    assert cp.port_status[("ls2", 1)] == DEAD


def test_plain_router_has_no_constant_branches():
    cp = ConstProp(ProcessingGraph.from_text(router()))
    assert not cp.dead_edges
    assert not [f for f in cp.findings() if f.rule == "constant-branch"]


# -- findings -----------------------------------------------------------------


def test_guarded_router_constant_branches_and_redundant_check():
    cp = ConstProp(ProcessingGraph.from_text(guarded_router()))
    branches = {(f.subject, f.rule) for f in cp.findings()}
    assert ("arpguard", "constant-branch") in branches
    assert ("sw", "constant-branch") in branches
    assert ("sw", "redundant-check") in branches
    assert cp.dead_edges == {("arpguard", 0), ("sw", 0)}


def test_analyze_config_surfaces_constprop_findings_and_metrics():
    report = analyze_config(
        guarded_router(), BuildOptions.packetmill(),
        subject="guarded-router")
    assert "constant-branch" in [f.rule for f in report.findings]
    assert report.metrics["constprop.dead_ports"] >= 2
    assert report.metrics["constprop.facts_proven"] > 0


# -- the precision regression (the reason this pass exists) -------------------


def _dataflow(config, constprop=None):
    model = CopyingModel()
    graph = ProcessingGraph.from_text(config)
    programs = {e.name: e.ir_program() for e in graph.all_elements()}
    return MetadataDataflow(
        graph, programs, model.rx_program(), model.tx_program(),
        constprop=constprop,
    )


def test_port_insensitive_merge_reports_a_false_use_before_init():
    # Pinned: the old analysis merges the dead arpguard[0] edge into
    # rt's in-state, losing paint_anno and falsely flagging sw.  The
    # path-sensitive run excludes the dead edge and the error is gone.
    old = _dataflow(guarded_router())
    false_positives = [
        f for f in old.findings() if f.rule == "meta-use-before-init"
    ]
    assert [f.subject for f in false_positives] == ["sw"]

    graph = ProcessingGraph.from_text(guarded_router())
    new = _dataflow(guarded_router(), constprop=ConstProp(graph))
    assert not [
        f for f in new.findings() if f.rule == "meta-use-before-init"
    ]


def test_guarded_router_is_error_free_end_to_end():
    report = analyze_config(
        guarded_router(), BuildOptions.packetmill(),
        subject="guarded-router")
    assert report.ok, [f.rule for f in report.errors]


# -- algebraic properties -----------------------------------------------------


facts_values = st.builds(
    Facts.make,
    data=st.dictionaries(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=255), max_size=4),
    meta=st.dictionaries(
        st.sampled_from(["paint_anno", "vlan_anno", "length"]),
        st.integers(min_value=0, max_value=1024), max_size=3),
    ranges=st.dictionaries(
        st.sampled_from(["length", "rss_anno"]),
        st.tuples(st.integers(min_value=0, max_value=512),
                  st.integers(min_value=0, max_value=512)).map(
                      lambda t: (min(t), max(t))),
        max_size=2),
)


@settings(max_examples=80, deadline=None)
@given(a=facts_values, b=facts_values)
def test_join_is_commutative_and_shrinking(a, b):
    joined = a.join(b)
    assert joined == b.join(a)
    # Facts only shrink across a join: every surviving constant was
    # present (identically) on both sides.
    assert set(joined.data) <= set(a.data) & set(b.data)
    assert set(joined.meta) <= set(a.meta) & set(b.meta)


@settings(max_examples=80, deadline=None)
@given(a=facts_values)
def test_join_is_idempotent(a):
    assert a.join(a) == a


@settings(max_examples=80, deadline=None)
@given(a=facts_values, b=facts_values, c=facts_values)
def test_join_is_associative(a, b, c):
    assert a.join(b).join(c) == a.join(b.join(c))
