"""Sharding-safety lints: state classification and the three rules."""

import pytest

from repro.analyze import (
    analyze_config,
    classify_element_state,
    lint_sharding,
    sharding_stats,
)
from repro.analyze.sharding import (
    CROSS_FLOW,
    FLOW_LOCAL,
    READ_ONLY,
    STATELESS,
)
from repro.click.graph import ProcessingGraph
from repro.core.nfs import forwarder, nat_router, router
from repro.core.options import BuildOptions
from repro.core.profile import RunProfile
from repro.net.rss import RssConfig
from repro.net.steering import SteeringPolicy

pytestmark = pytest.mark.analyze


def _classify(config, class_name):
    graph = ProcessingGraph.from_text(config)
    element = next(
        e for e in graph.all_elements() if e.class_name == class_name)
    return classify_element_state(element.ir_program())


IO = """
    input :: FromDPDKDevice(PORT 0);
    output :: ToDPDKDevice(PORT 0);
    input -> %s output;
"""


# -- classification -----------------------------------------------------------


def test_rewriters_and_io_are_stateless():
    assert _classify(IO % "EtherMirror ->", "EtherMirror") == STATELESS
    assert _classify(forwarder(), "FromDPDKDevice") == STATELESS


def test_fib_lookup_is_read_only():
    graph = ProcessingGraph.from_text(router())
    rt = {e.name: e for e in graph.all_elements()}["rt"]
    assert classify_element_state(rt.ir_program()) == READ_ONLY


def test_nat_conntrack_is_flow_local():
    graph = ProcessingGraph.from_text(nat_router())
    nat = next(e for e in graph.all_elements()
               if e.class_name == "IPRewriter")
    assert classify_element_state(nat.ir_program()) == FLOW_LOCAL


def test_counter_and_queue_are_cross_flow():
    assert _classify(IO % "Counter ->", "Counter") == CROSS_FLOW
    assert _classify(IO % "Queue(64) ->", "Queue") == CROSS_FLOW


def test_stats_count_the_nat_router_classes():
    stats = sharding_stats(ProcessingGraph.from_text(nat_router()))
    assert stats["sharding.flow_local"] == 1.0
    assert stats["sharding.read_only"] >= 1.0


# -- the three rules ----------------------------------------------------------


def _nat_findings(n_cores, rss=None):
    graph = ProcessingGraph.from_text(nat_router())
    return lint_sharding(graph, n_cores=n_cores, rss=rss)


def _steering(dispatch):
    return RssConfig(steering=SteeringPolicy(dispatch=dispatch))


def test_single_core_is_always_silent():
    assert _nat_findings(1) == []
    assert _nat_findings(1, rss=_steering(dispatch=True)) == []


def test_flow_local_under_plain_rss_is_safe():
    # RSS hash-partitioning keeps each flow on one replica: a NAT's
    # conntrack table shards cleanly.  No steering, no finding.
    assert _nat_findings(4) == []


def test_stateful_dispatch_is_an_error():
    findings = _nat_findings(4, rss=_steering(dispatch=True))
    rules = [(f.rule, f.severity) for f in findings]
    assert ("shard-stateful-dispatch", "error") in rules


def test_stateful_migration_without_dispatch_only_warns():
    findings = _nat_findings(4, rss=_steering(dispatch=False))
    rules = [(f.rule, f.severity) for f in findings]
    assert ("shard-stateful-migration", "warning") in rules
    assert "shard-stateful-dispatch" not in [f.rule for f in findings]


def test_cross_flow_state_warns_when_replicated():
    graph = ProcessingGraph.from_text(IO % "Counter ->")
    findings = lint_sharding(graph, n_cores=4)
    assert [(f.rule, f.severity) for f in findings] == [
        ("shard-shared-state", "warning")
    ]
    assert "4 cores" in findings[0].message
    assert lint_sharding(graph, n_cores=1) == []


# -- end to end through the analyzer API --------------------------------------


def test_profile_gates_the_sharding_lints():
    options = BuildOptions.packetmill()
    unsharded = analyze_config(nat_router(), options, subject="nat")
    assert not [f for f in unsharded.findings if f.rule.startswith("shard-")]

    sprayed = analyze_config(
        nat_router(), options, subject="nat",
        profile=RunProfile(n_cores=4, rss=_steering(dispatch=True)))
    assert not sprayed.ok
    assert "shard-stateful-dispatch" in [f.rule for f in sprayed.errors]

    steered = analyze_config(
        nat_router(), options, subject="nat",
        profile=RunProfile(n_cores=4, rss=_steering(dispatch=False)))
    assert steered.ok
    assert "shard-stateful-migration" in [f.rule for f in steered.findings]


def test_sharding_metrics_reach_the_report():
    report = analyze_config(
        nat_router(), BuildOptions.packetmill(), subject="nat",
        profile=RunProfile(n_cores=4))
    assert report.metrics["sharding.flow_local"] == 1.0
