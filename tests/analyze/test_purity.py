"""Purity checker: every pure_process claim is machine-checked."""

import pytest

from repro.analyze import PurityError, check_graph_purity, check_purity
from repro.click.element import Element, register
from repro.click.graph import ProcessingGraph
from repro.compiler.ir import Compute, DataAccess, Program, StateAccess
from repro.core import nfs
from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.exec import cache as exec_cache
from repro.hw.params import MachineParams

pytestmark = pytest.mark.analyze


@pytest.fixture(autouse=True)
def fresh_caches():
    exec_cache.reset_caches()
    yield
    exec_cache.reset_caches()


@register
class _ImpureClassifierForTest(Element):
    """Deliberately impure element carrying a FALSE purity annotation:
    its IR admits a per-packet state write the fast path would skip."""

    class_name = "ImpureClassifierForTest"
    pure_process = True  # the lie under test

    def process(self, pkt):
        return 0

    def route_signature(self, pkt):
        return 0

    def ir_program(self) -> Program:
        return Program(self.name, [
            DataAccess(12, 2),
            StateAccess(0, 8, write=True),  # hidden per-packet counter
            Compute(4),
        ])


IMPURE_CONFIG = (
    "input :: FromDPDKDevice(PORT 0);"
    "output :: ToDPDKDevice(PORT 0);"
    "x :: ImpureClassifierForTest;"
    "input -> x -> output;"
)


def test_every_shipped_pure_annotation_is_sound():
    for name, config in {
        "forwarder": nfs.forwarder(),
        "router": nfs.router(),
        "ids-router": nfs.ids_router(),
        "nat-router": nfs.nat_router(),
    }.items():
        graph = ProcessingGraph.from_text(config)
        for element in graph.all_elements():
            assert check_purity(element) == [], (name, element.name)


def test_unannotated_elements_trivially_pass():
    graph = ProcessingGraph.from_text(nfs.router())
    rt = graph.element("rt")
    assert not getattr(rt, "pure_process", False)
    assert check_purity(rt) == []


def test_false_annotation_is_rejected():
    graph = ProcessingGraph.from_text(IMPURE_CONFIG)
    findings = check_graph_purity(graph)
    assert [f.rule for f in findings] == ["purity-state-write"]
    assert findings[0].subject == "x"


def test_missing_route_signature_is_rejected():
    class _NoSignature(_ImpureClassifierForTest):
        route_signature = None

        def ir_program(self):
            return Program(self.name, [Compute(4)])

    element = _NoSignature("y")
    assert [f.rule for f in check_purity(element)] == ["purity-no-signature"]


def test_fast_path_refuses_to_engage_on_false_annotation(monkeypatch):
    monkeypatch.setenv("REPRO_FASTPATH", "1")
    mill = PacketMill(IMPURE_CONFIG, BuildOptions.vanilla(),
                      params=MachineParams().at_frequency(2.3))
    with pytest.raises(PurityError, match="'x' claims pure_process"):
        mill.build()


def test_build_succeeds_with_fast_path_disabled(monkeypatch):
    monkeypatch.setenv("REPRO_FASTPATH", "0")
    mill = PacketMill(IMPURE_CONFIG, BuildOptions.vanilla(),
                      params=MachineParams().at_frequency(2.3))
    binary = mill.build()
    assert not binary.driver.fastpath
