"""Property test: random programs stay verifier-clean across the passes.

The pass pipeline must preserve the IR invariants for *any* well-formed
input program, not just the programs our elements happen to emit.  We
generate random well-formed programs over the registered layouts, push
them through every pass the full PacketMill build runs (with the
after-each-pass verifier attached), and require zero error findings all
the way through lowering.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyze import attach_verifier, verify_exec_program, verify_program
from repro.compiler.ir import (
    BranchHint,
    Compute,
    DataAccess,
    DirectCall,
    FieldAccess,
    ParamRead,
    PoolOp,
    Program,
    StateAccess,
    VirtualCall,
)
from repro.compiler.lower import lower
from repro.compiler.pipeline import PassManager
from repro.compiler.structlayout import LayoutRegistry
from repro.core.options import BuildOptions
from repro.dpdk.metadata import CopyingModel, build_fastclick_packet_layout
from repro.dpdk.mbuf import MBUF_DATA_ROOM

pytestmark = pytest.mark.analyze

PACKET_FIELDS = [f.name for f in build_fastclick_packet_layout().fields]


def _registry() -> LayoutRegistry:
    registry = LayoutRegistry()
    CopyingModel().register_layouts(registry)
    return registry


field_access = st.builds(
    FieldAccess,
    struct=st.just("Packet"),
    fieldname=st.sampled_from(PACKET_FIELDS),
    write=st.booleans(),
)
data_access = st.tuples(
    st.integers(min_value=0, max_value=MBUF_DATA_ROOM - 1),
    st.integers(min_value=1, max_value=64),
).filter(lambda t: t[0] + t[1] <= MBUF_DATA_ROOM).map(
    lambda t: DataAccess(t[0], t[1])
)
compute = st.builds(
    Compute, instructions=st.floats(min_value=0, max_value=500)
)
state_access = st.builds(
    StateAccess,
    offset=st.integers(min_value=0, max_value=32),
    size=st.integers(min_value=1, max_value=16),
    write=st.booleans(),
)
param_read = st.builds(
    ParamRead,
    param=st.sampled_from(["alpha", "beta", "gamma"]),
    offset=st.integers(min_value=0, max_value=56),
)
branch = st.builds(
    BranchHint, miss_rate=st.floats(min_value=0.0, max_value=1.0)
)
virtual_call = st.builds(
    VirtualCall,
    callee=st.sampled_from(["push", "pull", "simple_action"]),
    miss_rate=st.floats(min_value=0.0, max_value=1.0),
)
direct_call = st.builds(
    DirectCall, callee=st.sampled_from(["push", "pull"])
)

any_op = st.one_of(
    field_access, data_access, compute, state_access,
    param_read, branch, virtual_call, direct_call,
)

programs = st.lists(any_op, min_size=0, max_size=24).map(
    lambda ops: Program("random", ops)
)


def _error_rules(findings):
    return [f.rule for f in findings if f.severity == "error"]


@settings(max_examples=60, deadline=None)
@given(program=programs)
def test_random_programs_stay_clean_through_the_full_pipeline(program):
    registry = _registry()
    assert _error_rules(verify_program(program, registry)) == []
    collected = []
    manager = PassManager.from_options(BuildOptions.packetmill())
    attach_verifier(manager, registry, collect=collected.extend)
    out = manager.run(program)
    assert collected == [], "a pass broke the program: %r" % collected
    exec_program = lower(out, registry)
    assert _error_rules(verify_exec_program(exec_program, registry)) == []


@settings(max_examples=30, deadline=None)
@given(program=programs, gets=st.integers(min_value=0, max_value=3))
def test_pool_balanced_programs_stay_balanced(program, gets):
    registry = _registry()
    ops = list(program.ops)
    ops += [PoolOp("get")] * gets + [PoolOp("put")] * gets
    balanced = Program("balanced", ops)
    assert _error_rules(verify_program(balanced, registry)) == []
    manager = PassManager.from_options(BuildOptions.packetmill())
    out = manager.run(balanced)
    assert _error_rules(verify_program(out, registry)) == []
