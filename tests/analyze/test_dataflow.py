"""Metadata dataflow: use-before-init, dead stores, model sensitivity."""

import pytest

from repro.analyze import MetadataDataflow, analyze_config
from repro.click.graph import ProcessingGraph
from repro.core.nfs import router
from repro.core.options import BuildOptions
from repro.dpdk.metadata import CopyingModel, OverlayingModel, XChangeModel
from repro.dpdk.tinynf import TinyNfModel
from repro.dpdk.xchg_api import fastclick_conversions, minimal_conversions

pytestmark = pytest.mark.analyze


def _dataflow(config, model=None, **kwargs):
    model = model or CopyingModel()
    graph = ProcessingGraph.from_text(config)
    programs = {e.name: e.ir_program() for e in graph.all_elements()}
    return MetadataDataflow(
        graph, programs, model.rx_program(), model.tx_program(), **kwargs
    )


PAINT_READER = """
    input :: FromDPDKDevice(PORT 0);
    output :: ToDPDKDevice(PORT 0);
    ps :: PaintSwitch(2);
    input -> %s ps;
    ps[0] -> output;
    ps[1] -> output;
"""


def _rules(findings):
    return [f.rule for f in findings]


def test_paint_anno_read_without_writer_is_use_before_init():
    dataflow = _dataflow(PAINT_READER % "")
    findings = [f for f in dataflow.findings() if f.rule == "meta-use-before-init"]
    assert [f.subject for f in findings] == ["ps"]
    assert "paint_anno" in findings[0].message


def test_upstream_paint_initializes_the_annotation():
    dataflow = _dataflow(PAINT_READER % "Paint(1) ->")
    assert not [
        f for f in dataflow.findings() if f.rule == "meta-use-before-init"
    ]


DIAMOND = """
    input :: FromDPDKDevice(PORT 0);
    output :: ToDPDKDevice(PORT 0);
    c :: Classifier(12/0800, -);
    ps :: PaintSwitch(2);
    input -> c;
    c[0] -> %(left)s ps;
    c[1] -> %(right)s ps;
    ps[0] -> output;
    ps[1] -> output;
"""


def test_must_reach_meet_is_intersection_over_paths():
    # Only one branch paints: the annotation is NOT definitely
    # initialized at the join, so the read must be flagged.
    one_sided = _dataflow(DIAMOND % {"left": "Paint(1) ->", "right": ""})
    assert "meta-use-before-init" in _rules(one_sided.findings())
    both = _dataflow(
        DIAMOND % {"left": "Paint(1) ->", "right": "Paint(2) ->"}
    )
    assert "meta-use-before-init" not in _rules(both.findings())


def test_router_dead_store_is_the_radix_dst_ip_annotation():
    dataflow = _dataflow(router())
    dead = [f for f in dataflow.findings() if f.rule == "meta-dead-store"]
    assert ("rt", "dst_ip_anno") in [
        (f.subject, f.message.split("Packet.")[1].split(",")[0]) for f in dead
    ]


VLAN_FORWARDER = """
    input :: FromDPDKDevice(PORT 0);
    output :: ToDPDKDevice(PORT 0);
    input -> VLANEncap(VLAN_TCI 100) -> output;
"""


def test_minimal_conversions_expose_missing_vlan_init():
    # The paper's l2fwd-xchg ships only the conversions l2fwd needs;
    # an element that depends on a skipped conversion is exactly the
    # bug class this analysis exists for.
    full = _dataflow(
        VLAN_FORWARDER, XChangeModel(conversions=fastclick_conversions())
    )
    assert "meta-use-before-init" not in _rules(full.findings())
    minimal = _dataflow(
        VLAN_FORWARDER, XChangeModel(conversions=minimal_conversions())
    )
    findings = [
        f for f in minimal.findings() if f.rule == "meta-use-before-init"
    ]
    assert findings and "vlan_anno" in findings[0].message


def test_tinynf_model_flags_vlan_reader_end_to_end():
    from repro.core.options import MetadataModel

    report = analyze_config(
        VLAN_FORWARDER, BuildOptions.metadata(MetadataModel.TINYNF)
    )
    assert not report.ok
    assert "meta-use-before-init" in [f.rule for f in report.errors]


def test_overlay_alias_credits_mbuf_writes_as_packet_defs():
    model = OverlayingModel()
    aliased = _dataflow(VLAN_FORWARDER, model, mbuf_alias=model.mbuf_alias)
    assert "meta-use-before-init" not in _rules(aliased.findings())
    # Without the alias map the same model falsely flags the read.
    naive = _dataflow(VLAN_FORWARDER, model)
    assert "meta-use-before-init" in _rules(naive.findings())


def test_queue_cycle_converges():
    config = """
    input :: FromDPDKDevice(PORT 0);
    output :: ToDPDKDevice(PORT 0);
    input -> Queue(64) -> output;
    """
    dataflow = _dataflow(config)
    assert dataflow.initialized_before("output") is not None


def test_tx_uses_are_initialized_by_every_model():
    for model in (CopyingModel(), OverlayingModel(), XChangeModel(),
                  TinyNfModel()):
        dataflow = _dataflow(
            "input :: FromDPDKDevice(PORT 0);"
            "output :: ToDPDKDevice(PORT 0);"
            "input -> EtherMirror -> output;",
            model,
            mbuf_alias=getattr(model, "mbuf_alias", None),
        )
        assert "meta-tx-uninit" not in _rules(dataflow.findings()), model.name
