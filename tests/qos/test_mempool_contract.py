"""The unified empty-pool contract: exhaustion degrades through counters.

Every allocation site -- single get, bulk get, RX replenish, clone --
reports exhaustion on the same ledger (``empty_gets`` at the pool, then
``rx_nombuf`` / ``clone_alloc_failures`` at the caller) instead of
letting an exception reach the hot path.
"""

import pytest

from repro.dpdk.mempool import Mempool, MempoolEmptyError
from repro.hw.layout import AddressSpace

from tests.qos.conftest import build_qos_forwarder, incast_trace, run_to_eof

pytestmark = pytest.mark.qos


def pool(n=4):
    return Mempool(AddressSpace(seed=0), n=n)


class TestEmptyPoolContract:
    def test_try_get_degrades_to_none(self):
        p = pool(n=1)
        assert p.try_get() is not None
        assert p.try_get() is None
        assert p.empty_gets == 1

    def test_get_raises_on_control_path(self):
        p = pool(n=1)
        p.get()
        with pytest.raises(MempoolEmptyError):
            p.get()
        assert p.empty_gets == 1  # raise and counter share one ledger

    def test_bulk_get_is_all_or_nothing(self):
        p = pool(n=4)
        assert p.bulk_get(5) is None
        assert p.empty_gets == 1
        assert p.available == 4  # nothing partially consumed
        refs = p.bulk_get(4)
        assert len(refs) == 4
        assert p.empty_gets == 1  # successful bulk charges nothing

    def test_bulk_refusal_counts_one_event_like_single_get(self):
        single, bulk = pool(n=1), pool(n=1)
        single.get()
        bulk.get()
        assert single.try_get() is None
        assert bulk.bulk_get(3) is None
        assert single.empty_gets == bulk.empty_gets == 1


class TestCongestedRunsStayOnContract:
    def test_incast_run_never_raises_and_ledgers_balance(self):
        # Congestion parks packets in queues, the closest this stack gets
        # to pool pressure; the run must finish on counters alone.
        for pfc in (False, True):
            binary = build_qos_forwarder(pfc=pfc, trace=incast_trace(limit=800))
            run_to_eof(binary.driver)
            mempool = binary.driver._model.mempool
            assert mempool.gets - mempool.puts == mempool.in_flight

    def test_exhaustion_counters_start_clean(self):
        binary = build_qos_forwarder(pfc=True, trace=incast_trace(limit=200))
        run_to_eof(binary.driver)
        # Ample pool: the degradation path exists but never fires here.
        assert binary.driver.stats.clone_alloc_failures == 0
        assert binary.driver.stats.rx_nombuf == 0
