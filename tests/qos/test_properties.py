"""Property tests: any congestion schedule conserves the buffer books.

For arbitrary oversubscription mixes and incast shapes, PFC on or off,
under the tight or default carving:

- per-priority accounting balances exactly (offered == admitted +
  dropped; admitted - drained == occupancy);
- the shared pool and headroom sums match the per-priority books, and
  no headroom is stranded once queues drain;
- the mempool ledger balances and nothing leaks after quiesce.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import assert_no_leak, assert_qos_conserved, check_conservation
from repro.net.trace import IncastBurstTrace, OversubscribedTrace, TraceSpec
from repro.qos import default_qos, tight_qos

from tests.qos.conftest import build_qos_forwarder, run_to_eof

pytestmark = pytest.mark.qos

rate_maps = st.dictionaries(
    keys=st.integers(0, 1),
    values=st.floats(0.5, 24.0, allow_nan=False),
    min_size=1,
    max_size=2,
)


@st.composite
def oversub_traces(draw):
    rates = draw(rate_maps)
    limit = draw(st.integers(100, 900))
    seed = draw(st.integers(0, 2**32 - 1))
    return OversubscribedTrace(rates, limit=limit, spec=TraceSpec(seed=seed))


@st.composite
def incast_traces(draw):
    return IncastBurstTrace(
        senders=draw(st.integers(2, 12)),
        burst_len=draw(st.integers(1, 6)),
        period=draw(st.integers(2, 10)),
        priority=0,
        background_rate=draw(st.floats(0.0, 8.0, allow_nan=False)),
        background_priority=1,
        limit=draw(st.integers(100, 900)),
        spec=TraceSpec(seed=draw(st.integers(0, 2**32 - 1))),
    )


traces = st.one_of(oversub_traces(), incast_traces())
carvings = st.sampled_from([tight_qos, default_qos])


@settings(max_examples=12, deadline=None)
@given(trace=traces, pfc=st.booleans(), carving=carvings,
       rate=st.integers(2, 12))
def test_any_congestion_schedule_conserves_buffers(trace, pfc, carving, rate):
    binary = build_qos_forwarder(pfc=pfc, rate=rate, qos=carving(),
                                 trace=trace)
    run_to_eof(binary.driver, max_steps=20_000)
    assert_qos_conserved(binary.driver)
    pool = binary.qos_ports[0]
    for acc in pool.priority_accounts().values():
        assert acc["offered"] == acc["admitted"] + acc["dropped"]
        assert acc["occupancy"] == 0  # fully drained at EOF
    assert pool.headroom_pool_used == 0
    assert pool.shared_used == 0


@settings(max_examples=8, deadline=None)
@given(trace=traces, pfc=st.booleans())
def test_any_congestion_schedule_balances_mempool(trace, pfc):
    binary = build_qos_forwarder(pfc=pfc, trace=trace)
    run_to_eof(binary.driver, max_steps=20_000)
    ledger = check_conservation(binary.driver)
    assert ledger["balance"] == 0
    binary.driver.quiesce()
    audit = assert_no_leak(binary.driver)
    assert audit["leak"] == 0


@settings(max_examples=6, deadline=None)
@given(trace=oversub_traces(), pfc=st.booleans())
def test_congested_runs_are_deterministic(trace, pfc):
    def run(t):
        binary = build_qos_forwarder(pfc=pfc, trace=t)
        run_to_eof(binary.driver, max_steps=20_000)
        stats = binary.driver.stats
        books = binary.qos_ports[0].snapshot()
        return (stats.rx_packets, stats.tx_packets, stats.drops,
                tuple(sorted(books.items())))

    clone = OversubscribedTrace(dict(trace.rates), limit=trace.limit,
                                spec=TraceSpec(seed=trace.spec.seed))
    assert run(trace) == run(clone)
