"""QoS lints: misconfigured carvings and unbound pause elements."""

import pytest

from repro.analyze import ERROR, WARNING, analyze_config, lint_qos, lint_qos_config
from repro.click.graph import ProcessingGraph
from repro.core import nfs
from repro.qos import BufferProfile, QosConfig, default_qos

pytestmark = [pytest.mark.qos, pytest.mark.analyze]


def _rules(findings):
    return [f.rule for f in findings]


def _graph(pfc=True):
    return ProcessingGraph.from_text(nfs.qos_forwarder(pfc=pfc))


def carving(**kwargs):
    defaults = dict(
        profiles={0: BufferProfile(reserved=4, shared_max=8, headroom=4,
                                   xoff=10, xon=4),
                  1: BufferProfile(reserved=4, shared_max=8)},
        shared_size=8,
        headroom_size=4,
    )
    defaults.update(kwargs)
    return QosConfig(**defaults)


class TestConfigLints:
    def test_consistent_carving_is_clean(self):
        assert lint_qos_config(carving()) == []

    def test_headroom_exceeding_pool_is_error(self):
        config = carving(headroom_size=2)
        (finding,) = [f for f in lint_qos_config(config)
                      if f.rule == "qos-headroom-exceeds-pool"]
        assert finding.severity == ERROR
        assert finding.subject == "prio0"

    def test_shared_quota_above_pool_is_warning(self):
        config = carving(shared_size=6)
        findings = [f for f in lint_qos_config(config)
                    if f.rule == "qos-shared-exceeds-pool"]
        assert {f.severity for f in findings} == {WARNING}

    def test_xon_above_xoff_is_error(self):
        config = carving()
        config.profiles[0] = BufferProfile(reserved=4, shared_max=8,
                                           headroom=4, xoff=5, xon=9)
        assert "qos-xon-above-xoff" in _rules(lint_qos_config(config))

    def test_unreachable_xoff_is_warning(self):
        config = carving()
        config.profiles[0] = BufferProfile(reserved=2, shared_max=2,
                                           headroom=4, xoff=50, xon=1)
        (finding,) = [f for f in lint_qos_config(config)
                      if f.rule == "qos-xoff-unreachable"]
        assert finding.severity == WARNING


class TestGraphLints:
    def test_pause_without_any_config_is_error(self):
        (finding,) = lint_qos(_graph(pfc=True))
        assert finding.rule == "qos-pause-unbound"
        assert finding.severity == ERROR
        assert finding.subject == "pfc"

    def test_no_qos_elements_no_config_is_silent(self):
        graph = ProcessingGraph.from_text(nfs.forwarder())
        assert lint_qos(graph) == []

    def test_pause_port_outside_config_coverage(self):
        config = carving(ports=(3,))
        findings = lint_qos(_graph(pfc=True), qos=config)
        assert "qos-pause-unbound" in _rules(findings)

    def test_pause_priority_without_profile_is_error(self):
        config = carving(profiles={1: BufferProfile(reserved=4)})
        findings = [f for f in lint_qos(_graph(pfc=True), qos=config)
                    if f.rule == "qos-priority-no-pool"]
        # pfc watches prio 0 (error); PrioritySwitch output 0 (warning).
        assert sorted(f.severity for f in findings) == [ERROR, WARNING]

    def test_switch_output_without_profile_is_warning(self):
        config = carving(profiles={0: BufferProfile(reserved=4, shared_max=8,
                                                    headroom=4, xoff=10,
                                                    xon=4)})
        findings = [f for f in lint_qos(_graph(pfc=True), qos=config)
                    if f.rule == "qos-priority-no-pool"]
        assert [f.severity for f in findings] == [WARNING]
        assert "output priority 1" in findings[0].message

    def test_bound_forwarder_with_shipped_carving_is_clean(self):
        report = analyze_config(nfs.qos_forwarder(pfc=True),
                                qos=default_qos())
        assert [f for f in report.findings if f.rule.startswith("qos-")] == []
