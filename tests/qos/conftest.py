"""Shared builders for the QoS / congestion-robustness suite."""

import pytest

from repro.core.nfs import qos_forwarder
from repro.core.packetmill import PacketMill
from repro.hw.params import MachineParams
from repro.net.trace import IncastBurstTrace, OversubscribedTrace, TraceSpec
from repro.qos import tight_qos


def incast_trace(limit=1500, seed=7, **kwargs):
    defaults = dict(senders=8, burst_len=4, period=4, priority=0,
                    background_rate=2.0, background_priority=1)
    defaults.update(kwargs)
    return IncastBurstTrace(limit=limit, spec=TraceSpec(seed=seed), **defaults)


def oversub_trace(rates=None, limit=1500, seed=7):
    return OversubscribedTrace(rates or {0: 8.0, 1: 8.0}, limit=limit,
                               spec=TraceSpec(seed=seed))


def build_qos_forwarder(pfc=True, rate=6, qos=None, trace=None, **mill_kwargs):
    """The congestion pipeline under the tight carving (fast to congest)."""
    return PacketMill(
        qos_forwarder(pfc=pfc, rate=rate),
        params=MachineParams(),
        trace=trace if trace is not None else incast_trace(),
        qos=qos or tight_qos(),
        **mill_kwargs,
    ).build()


def run_to_eof(driver, max_steps=10_000):
    steps = 0
    while not driver.at_eof() and steps < max_steps:
        driver.step()
        steps += 1
    assert driver.at_eof(), "run did not reach EOF within %d steps" % max_steps
    return steps


@pytest.fixture
def qos_builder():
    return build_qos_forwarder
