"""QoS must be provably free when not configured -- and invisible when
configured onto an uncongested pipeline.

Two guarantees:

1. A build without ``qos=`` carries zero QoS machinery: no pool on the
   NIC, no tick elements, no qos_ports on the driver.
2. The same pipeline, same trace, with a QoS carving that never
   congests produces *bit-identical* forwarding output and identical
   simulated CPU cycles -- QoS accounting is bookkeeping, not work the
   simulated core performs.
"""

import pytest

from repro.core import nfs
from repro.core.packetmill import PacketMill
from repro.hw.params import MachineParams
from repro.net.trace import FiniteTrace, FixedSizeTraceGenerator, TraceSpec
from repro.qos import default_qos

pytestmark = pytest.mark.qos

PACKETS = 400


def build(config=None, qos=None):
    trace = lambda port, core: FiniteTrace(
        FixedSizeTraceGenerator(256, TraceSpec(seed=11)), PACKETS)
    return PacketMill(config or nfs.forwarder(), params=MachineParams(),
                      trace=trace, qos=qos).build()


def fingerprint(binary):
    driver = binary.driver
    while not driver.at_eof():
        driver.step()
    stats = driver.stats
    return (stats.rx_packets, stats.tx_packets, stats.tx_bytes, stats.drops,
            stats.batches, round(driver.cpu.core_cycles, 6),
            driver.cpu.instructions)


class TestUnconfiguredIsZeroCost:
    def test_no_qos_machinery_without_config(self):
        binary = build()
        assert binary.qos_ports == {}
        assert binary.driver.qos_ports == {}
        for pmd in binary.pmds.values():
            assert pmd.nic.qos is None
        assert binary.driver.tick_elements == []

    def test_qos_free_run_has_no_qos_counters(self):
        binary = build()
        while not binary.driver.at_eof():
            binary.driver.step()
        names = binary.telemetry.registry.names()
        assert not any(name.startswith("qos.") for name in names)


class TestConfiguredIsBitIdentical:
    def test_uncongested_run_is_bit_identical_with_and_without_qos(self):
        bare = fingerprint(build())
        carved = fingerprint(build(qos=default_qos()))
        assert bare == carved

    def test_carved_run_still_reports_its_books(self):
        binary = build(qos=default_qos())
        while not binary.driver.at_eof():
            binary.driver.step()
        acc = binary.qos_ports[0].priority_accounts()[0]
        assert acc["offered"] == acc["admitted"] == acc["drained"] == PACKETS
        assert acc["dropped"] == 0
