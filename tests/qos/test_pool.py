"""Unit tests for QosPort: admission chain, pause thresholds, drain order."""

import pytest

from repro.net.packet import Packet
from repro.qos import (
    BufferProfile,
    QosAccountingError,
    QosConfig,
    QosPort,
    default_qos,
    packet_priority,
    shipped_qos_configs,
    tight_qos,
)

pytestmark = pytest.mark.qos


def frame(priority=0):
    pkt = Packet(bytes(64))
    pkt.priority = priority
    return pkt


def small_config(**kwargs):
    defaults = dict(
        profiles={0: BufferProfile(reserved=2, shared_max=3, headroom=4,
                                   xoff=4, xon=1)},
        shared_size=3,
        headroom_size=4,
    )
    defaults.update(kwargs)
    return QosConfig(**defaults)


class TestPriorityEncoding:
    def test_priority_is_pcp_bits(self):
        pkt = Packet(bytes(64))
        pkt.vlan_tci = (5 << 13) | 0x123
        assert pkt.priority == 5
        assert packet_priority(pkt) == 5

    def test_priority_setter_preserves_vid(self):
        pkt = Packet(bytes(64))
        pkt.vlan_tci = 0x123
        pkt.priority = 3
        assert pkt.priority == 3
        assert pkt.vlan_tci & 0x1FFF == 0x123

    def test_clone_copies_priority_but_not_ticket(self):
        pool = QosPort(small_config(), port=0)
        pkt = frame(0)
        assert pool.admit(pkt)
        clone = pkt.clone()
        assert clone.priority == 0
        assert clone.qos_ticket is None
        assert pkt.qos_ticket == (pool, 0)


class TestAdmissionChain:
    def test_reserved_then_shared_then_drop(self):
        pool = QosPort(small_config(), port=0)  # PFC off: no headroom
        admitted = [pool.admit(frame()) for _ in range(10)]
        # 2 reserved + 3 shared admitted, rest refused.
        assert admitted.count(True) == 5
        acc = pool.priority_accounts()[0]
        assert acc["reserved_used"] == 2
        assert acc["shared_used"] == 3
        assert acc["headroom_used"] == 0
        assert acc["offered"] == 10
        assert acc["dropped"] == 5

    def test_headroom_needs_pfc_and_xoff(self):
        pool = QosPort(small_config(), port=0)
        pool.enable_pfc([0])
        results = [pool.admit(frame()) for _ in range(9)]
        # 2 reserved + 3 shared + 4 headroom (occ >= xoff=4 by then).
        assert results.count(True) == 9
        acc = pool.priority_accounts()[0]
        assert acc["headroom_used"] == 4
        assert not pool.admit(frame())  # all buckets full

    def test_shared_pool_cap_binds_across_priorities(self):
        config = QosConfig(
            profiles={0: BufferProfile(reserved=1, shared_max=4),
                      1: BufferProfile(reserved=1, shared_max=4)},
            shared_size=4,
        )
        pool = QosPort(config, port=0)
        for _ in range(4):
            assert pool.admit(frame(0))  # 1 reserved + 3 shared
        assert pool.admit(frame(1))      # 1 reserved
        assert pool.admit(frame(1))      # takes the last shared cell
        assert pool.shared_used == 4
        assert not pool.admit(frame(1))  # pool exhausted despite quota room

    def test_unprofiled_priority_counts_unpooled(self):
        pool = QosPort(small_config(), port=0)
        assert not pool.admit(frame(7))
        assert pool.unpooled_drops.value == 1
        assert pool.priority_accounts()[0]["offered"] == 0


class TestPause:
    def test_pause_asserts_at_xoff_and_deasserts_at_xon(self):
        pool = QosPort(small_config(), port=0)
        pool.enable_pfc([0])
        for _ in range(4):
            pool.admit(frame())
        assert not pool.is_paused(0)
        pool.poll_pause()
        assert pool.is_paused(0)
        assert pool.paused_priorities() == frozenset({0})
        for _ in range(3):  # occ 4 -> 1 == xon
            pool.drain(0)
        pool.poll_pause()
        assert not pool.is_paused(0)

    def test_pause_counters(self):
        pool = QosPort(small_config(), port=0)
        pool.enable_pfc()
        for _ in range(4):
            pool.admit(frame())
        pool.poll_pause()
        pool.poll_pause()
        acc = pool.priority_accounts()[0]
        assert acc["pause_events"] == 1
        assert acc["pause_iterations"] == 2

    def test_no_pause_without_pfc(self):
        pool = QosPort(small_config(), port=0)
        for _ in range(5):
            pool.admit(frame())
        pool.poll_pause()
        assert not pool.is_paused(0)


class TestDrain:
    def test_drain_reclaims_headroom_first(self):
        pool = QosPort(small_config(), port=0)
        pool.enable_pfc([0])
        for _ in range(9):
            pool.admit(frame())
        assert pool.headroom_pool_used == 4
        pool.drain(0)
        acc = pool.priority_accounts()[0]
        assert acc["headroom_used"] == 3
        assert acc["shared_used"] == 3  # untouched until headroom empty
        for _ in range(3):
            pool.drain(0)
        assert pool.headroom_pool_used == 0
        pool.drain(0)
        assert pool.priority_accounts()[0]["shared_used"] == 2

    def test_double_drain_raises(self):
        pool = QosPort(small_config(), port=0)
        pool.admit(frame())
        pool.drain(0)
        with pytest.raises(QosAccountingError):
            pool.drain(0)

    def test_drain_unknown_priority_raises(self):
        pool = QosPort(small_config(), port=0)
        with pytest.raises(QosAccountingError):
            pool.drain(5)


class TestTelemetry:
    def test_counters_live_under_qos_scope(self):
        pool = QosPort(small_config(), port=3)
        pool.enable_pfc([0])
        for _ in range(9):
            pool.admit(frame())
        snap = pool.snapshot()
        assert snap["prio0.offered"] == 9
        assert snap["prio0.occupancy"] == 9
        assert snap["shared.used"] == 3
        assert snap["headroom.used"] == 4
        assert snap["headroom.hwm"] == 4
        assert snap["prio0.occupancy_hwm"] == 9
        names = pool.registry.names()
        assert "qos.3.prio0.admitted" in names

    def test_hwm_survives_drain(self):
        pool = QosPort(small_config(), port=0)
        pool.enable_pfc([0])
        for _ in range(9):
            pool.admit(frame())
        for _ in range(9):
            pool.drain(0)
        snap = pool.snapshot()
        assert snap["prio0.occupancy"] == 0
        assert snap["headroom.used"] == 0
        assert snap["prio0.occupancy_hwm"] == 9
        assert snap["headroom.hwm"] == 4


class TestConfig:
    def test_shipped_configs(self):
        shipped = shipped_qos_configs()
        assert set(shipped) == {"default", "tight"}
        assert shipped["default"].profiles[0].headroom == 64

    def test_effective_thresholds_default(self):
        profile = BufferProfile(reserved=10, shared_max=20)
        assert profile.effective_xoff == 30
        assert profile.effective_xon == 15

    def test_negative_quota_rejected(self):
        with pytest.raises(ValueError):
            BufferProfile(reserved=-1)

    def test_priority_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            QosConfig(profiles={8: BufferProfile(reserved=1)})

    def test_shipped_carvings_are_internally_consistent(self):
        from repro.analyze.qos import lint_qos_config

        for config in (default_qos(), tight_qos()):
            assert lint_qos_config(config) == []
