"""End-to-end congestion runs: PFC backpressure vs the lossy baseline."""

import pytest

from repro.core.packetmill import BuildError, PacketMill
from repro.core.nfs import forwarder, qos_forwarder
from repro.faults import (
    assert_no_leak,
    assert_qos_conserved,
    check_conservation,
    qos_audit,
)
from repro.hw.params import MachineParams
from repro.perf.report import CONGESTED, HEALTHY, classify_qos, format_qos_report
from repro.qos import default_qos, tight_qos

from tests.qos.conftest import (
    build_qos_forwarder,
    incast_trace,
    oversub_trace,
    run_to_eof,
)

pytestmark = pytest.mark.qos


class TestIncast:
    def test_pfc_on_loses_no_priority0_frames(self):
        binary = build_qos_forwarder(pfc=True)
        run_to_eof(binary.driver)
        books = qos_audit(binary.driver)[0]["priorities"]
        assert books[0]["dropped"] == 0
        assert books[0]["pause_events"] > 0

    def test_pfc_off_baseline_drops_priority0(self):
        binary = build_qos_forwarder(pfc=False)
        run_to_eof(binary.driver)
        books = qos_audit(binary.driver)[0]["priorities"]
        assert books[0]["dropped"] > 0
        assert books[0]["pause_events"] == 0

    def test_headroom_absorbs_post_xoff_inflight(self):
        binary = build_qos_forwarder(pfc=True)
        run_to_eof(binary.driver)
        snap = binary.qos_ports[0].snapshot()
        assert snap["headroom.hwm"] > 0
        assert snap["headroom.used"] == 0  # fully reclaimed at EOF

    def test_all_audits_clean_at_eof(self):
        for pfc in (False, True):
            binary = build_qos_forwarder(pfc=pfc)
            run_to_eof(binary.driver)
            assert_qos_conserved(binary.driver)
            assert check_conservation(binary.driver)["balance"] == 0
            binary.driver.quiesce()
            assert_no_leak(binary.driver)

    def test_pure_lossless_traffic_never_deadlocks(self):
        trace = incast_trace(background_rate=0.0, period=2, limit=400)
        binary = build_qos_forwarder(pfc=True, rate=4, trace=trace)
        run_to_eof(binary.driver)
        assert binary.driver.stats.tx_packets == 400


class TestOversubscription:
    def test_sustained_overload_paces_source(self):
        trace = oversub_trace(rates={0: 16.0, 1: 16.0}, limit=1200)
        binary = build_qos_forwarder(pfc=True, rate=6, trace=trace)
        run_to_eof(binary.driver)
        books = qos_audit(binary.driver)[0]["priorities"]
        assert books[0]["dropped"] == 0       # paused, not dropped
        assert books[1]["dropped"] > 0        # lossy class takes the loss
        assert trace.source_throttled > 0     # shed load is accounted
        assert_qos_conserved(binary.driver)

    def test_undersubscribed_run_stays_healthy(self):
        trace = oversub_trace(rates={0: 2.0, 1: 2.0}, limit=600)
        binary = build_qos_forwarder(pfc=True, rate=6, trace=trace)
        run_to_eof(binary.driver)
        audit = qos_audit(binary.driver)
        assert classify_qos(audit) == HEALTHY
        assert binary.driver.stats.tx_packets == 600


class TestNicAdmission:
    def test_refused_frame_does_not_consume_descriptor(self):
        # No PFC, tiny buffers: admission refusals leave the descriptor
        # for the next accepted frame; rx_delivered counts only admitted.
        binary = build_qos_forwarder(pfc=False)
        run_to_eof(binary.driver)
        nic = binary.pmds[0].nic
        books = qos_audit(binary.driver)[0]["priorities"]
        admitted = sum(acc["admitted"] for acc in books.values())
        assert nic.rx_delivered == admitted

    def test_paused_priority_stops_at_source(self):
        trace = oversub_trace(rates={0: 20.0}, limit=800)
        binary = build_qos_forwarder(pfc=True, rate=4, trace=trace)
        run_to_eof(binary.driver)
        books = qos_audit(binary.driver)[0]["priorities"]
        # Pause throttled the source: zero lossless drops despite 5x load.
        assert books[0]["dropped"] == 0
        assert books[0]["pause_iterations"] > 0


class TestReporting:
    def test_classify_and_format(self):
        binary = build_qos_forwarder(pfc=True)
        run_to_eof(binary.driver)
        audit = qos_audit(binary.driver)
        assert classify_qos(audit) == CONGESTED
        text = format_qos_report(audit, label="incast")
        assert "incast: congested" in text
        assert "prio 0:" in text
        assert "CONSERVATION VIOLATION" not in text


class TestBuildWiring:
    def test_pause_without_qos_config_refuses_build(self):
        with pytest.raises(BuildError, match="no QoS buffer"):
            PacketMill(qos_forwarder(pfc=True),
                       params=MachineParams()).build()

    def test_qos_port_not_in_graph_refuses_build(self):
        from repro.qos import BufferProfile, QosConfig

        config = QosConfig(profiles={0: BufferProfile(reserved=8)},
                           ports=(3,))
        with pytest.raises(BuildError, match="port 3"):
            PacketMill(qos_forwarder(pfc=False), params=MachineParams(),
                       qos=config).build()

    def test_plain_config_with_qos_admits_transparently(self):
        # A QoS carving on a non-congested pipeline: pure accounting.
        binary = PacketMill(forwarder(), params=MachineParams(),
                            qos=default_qos()).build()
        binary.driver.run_batches(30)
        audit = qos_audit(binary.driver)
        assert classify_qos(audit) == HEALTHY
        books = audit[0]["priorities"][0]
        assert books["offered"] == books["admitted"] > 0
        assert_qos_conserved(binary.driver)
