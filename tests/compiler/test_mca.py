"""Tests for the static cost estimator (llvm-mca analogue)."""

import pytest

from repro.compiler.ir import BranchHint, Compute, DataAccess, FieldAccess, Program, RandomAccess
from repro.compiler.lower import lower
from repro.compiler.mca import DEFAULT_LOCALITY, compare, estimate, estimate_pipeline
from repro.compiler.structlayout import Field, LayoutRegistry, StructLayout
from repro.hw.params import MachineParams

PARAMS = MachineParams(freq_ghz=2.3)


def lowered(ops):
    registry = LayoutRegistry()
    registry.register(StructLayout("Packet", [Field("length", 4), Field("data_ptr", 8)]))
    return lower(Program("test", ops), registry)


class TestEstimate:
    def test_pure_compute(self):
        cost = estimate(lowered([Compute(320)]), PARAMS)
        assert cost.issue_cycles == pytest.approx(320 / PARAMS.issue_ipc)
        assert cost.uncore_ns == 0.0

    def test_branch_misses_add_stalls(self):
        cost = estimate(lowered([BranchHint(0.5)]), PARAMS)
        assert cost.stall_cycles == pytest.approx(0.5 * PARAMS.branch_miss_cycles)

    def test_memory_targets_use_locality(self):
        warm = estimate(lowered([FieldAccess("Packet", "length")]), PARAMS)
        cold = estimate(
            lowered([FieldAccess("Packet", "length")]),
            PARAMS,
            locality={"packet_meta": (0.0, 0.0, 0.0)},  # all DRAM
        )
        assert cold.uncore_ns > warm.uncore_ns

    def test_defaults_cover_every_target(self):
        from repro.compiler.lower import VALID_TARGETS

        assert set(DEFAULT_LOCALITY) == set(VALID_TARGETS)

    def test_multi_line_access_costs_more(self):
        one = estimate(lowered([DataAccess(0, 8)]), PARAMS)
        four = estimate(lowered([DataAccess(0, 256)]), PARAMS)
        assert four.uncore_ns > one.uncore_ns

    def test_random_access_footprint_scaling(self):
        small = estimate(lowered([RandomAccess(64 * 1024, 1)]), PARAMS)
        large = estimate(lowered([RandomAccess(64 * 1024 * 1024, 1)]), PARAMS)
        assert large.uncore_ns > small.uncore_ns

    def test_ns_scales_with_frequency(self):
        cost = estimate(lowered([Compute(320), BranchHint(0.5)]), PARAMS)
        assert cost.ns(1.2) > cost.ns(3.0)

    def test_ipc_bounded_by_issue(self):
        cost = estimate(lowered([Compute(100)]), PARAMS)
        assert cost.ipc(2.3) == pytest.approx(PARAMS.issue_ipc)


class TestPipelineAndAccuracy:
    def test_pipeline_sums(self):
        a = lowered([Compute(100)])
        b = lowered([Compute(200)])
        total = estimate_pipeline([a, b], PARAMS)
        assert total.instructions == 300

    def test_compare_report(self):
        before = estimate(lowered([Compute(400)]), PARAMS)
        after = estimate(lowered([Compute(300)]), PARAMS)
        report = compare(before, after, 2.3)
        assert "->" in report and "%" in report

    def test_estimator_tracks_measured_ordering(self):
        """mca's value: it ranks builds the same way execution does."""
        from repro.core import nfs
        from repro.core.options import BuildOptions
        from repro.core.packetmill import PacketMill

        estimates = {}
        measured = {}
        for label, options in [
            ("vanilla", BuildOptions.vanilla()),
            ("all", BuildOptions.all_code_opts()),
        ]:
            binary = PacketMill(nfs.router(), options, params=PARAMS).build()
            programs = list(binary.exec_programs.values())
            programs += [binary.pmds[0].rx_exec, binary.pmds[0].tx_exec]
            estimates[label] = estimate_pipeline(programs, PARAMS).ns(2.3)
            measured[label] = binary.measure(batches=80, warmup_batches=40).ns_per_packet
        assert (estimates["all"] < estimates["vanilla"]) == (
            measured["all"] < measured["vanilla"]
        )

    def test_estimator_within_2x_of_measurement(self):
        """The locality defaults keep the static estimate in the right
        ballpark (mca-grade accuracy, not cycle-exactness)."""
        from repro.core import nfs
        from repro.core.options import BuildOptions
        from repro.core.packetmill import PacketMill

        binary = PacketMill(nfs.forwarder(), BuildOptions.vanilla(), params=PARAMS).build()
        programs = list(binary.exec_programs.values())
        programs += [binary.pmds[0].rx_exec, binary.pmds[0].tx_exec]
        static_ns = estimate_pipeline(programs, PARAMS).ns(2.3)
        measured_ns = binary.measure(batches=80, warmup_batches=40).ns_per_packet
        assert measured_ns / 2 < static_ns < measured_ns * 2
