"""ProgramFacts: delta extraction, replay, and the codegen facts path."""

import pytest

from repro.compiler import codegen
from repro.compiler.facts import (
    FactsError,
    ProgramFacts,
    facts_between,
    facts_signature,
)
from repro.compiler.lower import (
    TARGET_DATA,
    TARGET_STATE,
    ExecProgram,
    MemOp,
)


def _program(name="elem", instructions=20.0, branch=0.1,
             mem_ops=None, random_ops=None):
    return ExecProgram(
        name=name,
        instructions=instructions,
        branch_miss_expect=branch,
        mem_ops=list(mem_ops if mem_ops is not None else [
            MemOp(TARGET_DATA, 12, 2, False),
            MemOp(TARGET_STATE, 0, 8, False),
            MemOp(TARGET_STATE, 8, 8, False),
        ]),
        random_ops=list(random_ops or []),
    )


# -- facts_between / apply round trip -----------------------------------------


def test_delta_round_trips_through_apply():
    original = _program()
    specialized = ExecProgram(
        name="elem", instructions=14.0, branch_miss_expect=0.0,
        mem_ops=[MemOp(TARGET_STATE, 8, 8, False)],
        random_ops=[],
    )
    facts = facts_between(original, specialized, branches_eliminated=1)
    assert facts.dead_instructions == 6.0
    assert facts.dead_branch_expect == pytest.approx(0.1)
    assert len(facts.dead_mem_ops) == 2
    pruned = facts.apply(original)
    assert pruned.instructions == specialized.instructions
    assert pruned.branch_miss_expect == specialized.branch_miss_expect
    assert pruned.mem_ops == specialized.mem_ops


def test_identical_programs_yield_empty_facts():
    facts = facts_between(_program(), _program())
    assert facts.is_empty


def test_random_ops_are_diffed_too():
    original = _program(random_ops=[(1 << 20, 2), (4096, 1)])
    specialized = _program(random_ops=[(4096, 1)])
    facts = facts_between(original, specialized)
    assert facts.dead_random_ops == ((1 << 20, 2),)
    assert facts.apply(original).random_ops == [(4096, 1)]


def test_non_subsequence_specialization_is_rejected():
    original = _program()
    reordered = _program(mem_ops=[
        MemOp(TARGET_STATE, 8, 8, False),
        MemOp(TARGET_DATA, 12, 2, False),
    ])
    with pytest.raises(FactsError, match="not a subsequence"):
        facts_between(original, reordered)


def test_cost_increase_is_rejected():
    with pytest.raises(FactsError, match="increased cost"):
        facts_between(_program(instructions=10.0),
                      _program(instructions=11.0))


def test_pool_behaviour_change_is_rejected():
    original = _program()
    grabby = _program()
    grabby.pool_gets = 1
    with pytest.raises(FactsError, match="pool behaviour"):
        facts_between(original, grabby)


def test_name_mismatch_is_rejected_both_ways():
    with pytest.raises(FactsError, match="cannot diff"):
        facts_between(_program("a"), _program("b"))
    facts = ProgramFacts(program="a", dead_instructions=1.0)
    with pytest.raises(FactsError, match="applied to program"):
        facts.apply(_program("b"))


def test_stale_facts_do_not_apply():
    facts = ProgramFacts(
        program="elem",
        dead_mem_ops=((TARGET_DATA, 99, 4, False),),
    )
    with pytest.raises(FactsError, match="not present"):
        facts.apply(_program())


def test_overdrawn_facts_do_not_apply():
    facts = ProgramFacts(program="elem", dead_instructions=1000.0)
    with pytest.raises(FactsError, match="more cost"):
        facts.apply(_program(instructions=20.0))


# -- signatures ---------------------------------------------------------------


def test_empty_facts_maps_sign_as_none():
    assert facts_signature(None) is None
    assert facts_signature({}) is None


def test_signature_is_order_independent_and_hashable():
    a = ProgramFacts(program="a", dead_instructions=1.0)
    b = ProgramFacts(program="b", dead_instructions=2.0)
    sig = facts_signature({"a": a, "b": b})
    assert sig == facts_signature({"b": b, "a": a})
    assert hash(sig) is not None


# -- the codegen facts path ---------------------------------------------------


@pytest.fixture(autouse=True)
def fresh_codegen_stats():
    codegen.reset_stats()
    yield
    codegen.reset_stats()


def test_compile_with_facts_charges_the_pruned_program():
    program = _program()
    facts = facts_between(program, ExecProgram(
        name="elem", instructions=14.0, branch_miss_expect=0.0,
        mem_ops=[MemOp(TARGET_STATE, 8, 8, False)], random_ops=[],
    ), branches_eliminated=1)
    plain = codegen.compile_program(program)
    pruned = codegen.compile_program(program, facts=facts)
    assert pruned is not plain
    stats = codegen.stats()
    assert stats["facts_applied"] == 1
    assert stats["facts_branches_eliminated"] == 1


def test_facts_memo_is_separate_from_the_plain_memo():
    program = _program()
    facts = facts_between(program, _program(instructions=15.0))
    plain_one = codegen.compile_program(program)
    pruned_one = codegen.compile_program(program, facts=facts)
    plain_two = codegen.compile_program(program)
    pruned_two = codegen.compile_program(program, facts=facts)
    assert plain_one is plain_two
    assert pruned_one is pruned_two
    assert plain_one is not pruned_one


def test_empty_facts_fall_back_to_the_plain_path():
    program = _program()
    facts = facts_between(program, _program())
    assert facts.is_empty
    assert (codegen.compile_program(program, facts=facts)
            is codegen.compile_program(program))
    assert codegen.stats()["facts_applied"] == 0


def test_inapplicable_facts_are_a_codegen_error():
    program = _program()
    stale = ProgramFacts(
        program="elem",
        dead_mem_ops=((TARGET_DATA, 99, 4, False),),
    )
    with pytest.raises(codegen.CodegenError, match="facts do not apply"):
        codegen.compile_program(program, facts=stale)
