"""Tests for struct layouts and the field-reordering transformation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compiler.structlayout import Field, LayoutRegistry, StructLayout


def sample_layout():
    # Mirrors the paper's Listing 4 example: one hot field buried behind
    # cold ones.
    return StructLayout(
        "Packet",
        [
            Field("unusedlong", 8),
            Field("unusedptr", 8),
            Field("data", 8),
            Field("unusedchar", 1),
            Field("length", 4),
        ],
    )


class TestStructLayout:
    def test_offsets_respect_alignment(self):
        layout = sample_layout()
        assert layout.offset_of("unusedlong") == 0
        assert layout.offset_of("unusedptr") == 8
        assert layout.offset_of("data") == 16
        assert layout.offset_of("unusedchar") == 24
        assert layout.offset_of("length") == 28  # aligned to 4 after the char

    def test_size_rounds_to_struct_align(self):
        layout = sample_layout()
        assert layout.size == 64

    def test_min_size(self):
        layout = StructLayout("s", [Field("a", 8)], min_size=128)
        assert layout.size == 128

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError):
            StructLayout("s", [Field("a", 8), Field("a", 4)])

    def test_missing_field_raises(self):
        with pytest.raises(KeyError):
            sample_layout().offset_of("nope")

    def test_cache_line_of(self):
        layout = StructLayout("s", [Field("a", 64, align=64), Field("b", 8)])
        assert layout.cache_line_of("a") == 0
        assert layout.cache_line_of("b") == 1

    def test_cache_lines_total(self):
        layout = StructLayout("s", [Field("a", 100)], align=64)
        assert layout.cache_lines() == 2

    def test_lines_touched(self):
        layout = StructLayout(
            "s", [Field("a", 8), Field("pad", 120, align=8), Field("b", 8)]
        )
        assert layout.lines_touched(["a"]) == 1
        assert layout.lines_touched(["a", "b"]) == 2
        assert layout.lines_touched(["pad"]) == 2  # straddles

    def test_has_field(self):
        assert sample_layout().has_field("data")
        assert not sample_layout().has_field("ghost")


class TestReordering:
    def test_hot_field_moves_to_front(self):
        layout = sample_layout()
        hot = layout.reordered({"length": 10, "data": 5})
        assert hot.offset_of("length") == 0
        assert hot.offset_of("data") == 8

    def test_unreferenced_fields_keep_relative_order(self):
        hot = sample_layout().reordered({"length": 1})
        names = [f.name for f in hot.fields]
        assert names == ["length", "unusedlong", "unusedptr", "data", "unusedchar"]

    def test_reordering_reduces_lines_touched(self):
        """The point of the pass: hot fields end up on one line."""
        fields = [Field("cold%d" % i, 8) for i in range(8)]
        fields.append(Field("hot_a", 8))
        fields += [Field("cold%d" % i, 8) for i in range(8, 16)]
        fields.append(Field("hot_b", 8))
        layout = StructLayout("meta", fields)
        before = layout.lines_touched(["hot_a", "hot_b"])
        after = layout.reordered({"hot_a": 9, "hot_b": 7}).lines_touched(
            ["hot_a", "hot_b"]
        )
        assert before == 2
        assert after == 1

    def test_reordering_preserves_field_set_and_size_bound(self):
        layout = sample_layout()
        hot = layout.reordered({"length": 3})
        assert {f.name for f in hot.fields} == {f.name for f in layout.fields}
        assert hot.size <= layout.size  # packing can only improve or tie

    @given(
        st.dictionaries(
            st.sampled_from(["unusedlong", "unusedptr", "data", "unusedchar", "length"]),
            st.integers(min_value=0, max_value=100),
        )
    )
    def test_reordering_total_order_property(self, counts):
        """Fields are sorted by non-increasing access count."""
        hot = sample_layout().reordered(counts)
        seq = [counts.get(f.name, 0) for f in hot.fields]
        assert seq == sorted(seq, reverse=True)


class TestLayoutRegistry:
    def test_register_and_resolve(self):
        registry = LayoutRegistry()
        registry.register(sample_layout())
        offset, size = registry.resolve("Packet", "length")
        assert (offset, size) == (28, 4)

    def test_replace_changes_resolution(self):
        registry = LayoutRegistry()
        layout = registry.register(sample_layout())
        registry.replace("Packet", layout.reordered({"length": 5}))
        offset, _ = registry.resolve("Packet", "length")
        assert offset == 0

    def test_replace_unknown_raises(self):
        with pytest.raises(KeyError):
            LayoutRegistry().replace("Packet", sample_layout())

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            LayoutRegistry().get("nope")

    def test_copy_is_independent(self):
        registry = LayoutRegistry()
        layout = registry.register(sample_layout())
        dup = registry.copy()
        dup.replace("Packet", layout.reordered({"length": 5}))
        assert registry.resolve("Packet", "length")[0] == 28
        assert dup.resolve("Packet", "length")[0] == 0
