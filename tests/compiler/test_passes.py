"""Tests for the IR, the optimization passes, and lowering."""

import pytest

from repro.compiler.ir import (
    BranchHint,
    Compute,
    DataAccess,
    DirectCall,
    FieldAccess,
    ParamRead,
    PoolOp,
    Program,
    RandomAccess,
    StateAccess,
    VirtualCall,
    merge_access_counts,
)
from repro.compiler.lower import MemOp, lower
from repro.compiler.passes import (
    devirtualize,
    eliminate_dead_code,
    embed_constants,
    inline_calls,
    reorder_metadata,
)
from repro.compiler.passes.reorder import ReorderError
from repro.compiler.passes.transforms import DEAD_NOTE, FOLDABLE_NOTE, FOLD_FACTOR
from repro.compiler.structlayout import Field, LayoutRegistry, StructLayout


def packet_layout():
    return StructLayout(
        "Packet",
        [Field("cold", 8), Field("length", 4), Field("data_ptr", 8)],
    )


def registry():
    reg = LayoutRegistry()
    reg.register(packet_layout())
    reg.register(StructLayout("rte_mbuf", [Field("buf_addr", 8), Field("pkt_len", 4)]))
    return reg


def sample_program():
    return Program(
        "EtherMirror",
        [
            VirtualCall("push_batch"),
            ParamRead("burst", offset=16),
            Compute(20, note=FOLDABLE_NOTE),
            Compute(5, note=DEAD_NOTE),
            Compute(30),
            FieldAccess("Packet", "length"),
            DataAccess(0, 12, write=True),
            BranchHint(0.1),
        ],
    )


class TestProgram:
    def test_count(self):
        assert sample_program().count(Compute) == 3
        assert sample_program().count(VirtualCall) == 1

    def test_access_counts(self):
        program = Program(
            "x",
            [FieldAccess("Packet", "length"), FieldAccess("Packet", "length"),
             FieldAccess("Packet", "cold"), FieldAccess("rte_mbuf", "pkt_len")],
        )
        assert program.access_counts("Packet") == {"length": 2, "cold": 1}

    def test_merge_access_counts(self):
        a = Program("a", [FieldAccess("Packet", "length")])
        b = Program("b", [FieldAccess("Packet", "length"), FieldAccess("Packet", "cold")])
        assert merge_access_counts([a, b], "Packet") == {"length": 2, "cold": 1}

    def test_add_and_len(self):
        program = Program("p").add(Compute(1)).add(Compute(2))
        assert len(program) == 2


class TestDevirtualize:
    def test_virtual_becomes_direct(self):
        out = devirtualize(sample_program())
        assert out.count(VirtualCall) == 0
        assert out.count(DirectCall) == 1

    def test_other_ops_preserved(self):
        out = devirtualize(sample_program())
        assert out.count(Compute) == 3
        assert out.count(ParamRead) == 1

    def test_idempotent(self):
        out = devirtualize(devirtualize(sample_program()))
        assert out.count(DirectCall) == 1


class TestEmbedConstants:
    def test_param_reads_removed(self):
        out = embed_constants(sample_program())
        assert out.count(ParamRead) == 0

    def test_dead_compute_removed(self):
        out = embed_constants(sample_program())
        notes = [op.note for op in out.ops if isinstance(op, Compute)]
        assert DEAD_NOTE not in notes

    def test_foldable_compute_shrinks(self):
        from repro.compiler.passes.transforms import FOLDED_NOTE

        out = embed_constants(sample_program())
        folded = [op for op in out.ops if isinstance(op, Compute) and op.note == FOLDED_NOTE]
        assert folded[0].instructions == pytest.approx(20 * (1 - FOLD_FACTOR))

    def test_embed_constants_idempotent(self):
        once = embed_constants(sample_program())
        twice = embed_constants(once)
        assert [op for op in once.ops] == [op for op in twice.ops]

    def test_plain_compute_untouched(self):
        out = embed_constants(sample_program())
        plain = [op for op in out.ops if isinstance(op, Compute) and op.note == ""]
        assert plain[0].instructions == 30

    def test_virtual_calls_untouched(self):
        assert embed_constants(sample_program()).count(VirtualCall) == 1


class TestInline:
    def test_removes_all_calls(self):
        out = inline_calls(devirtualize(sample_program()))
        assert out.count(DirectCall) == 0
        assert out.count(VirtualCall) == 0

    def test_removes_virtual_calls_too(self):
        # Static graph implies full devirtualization, then inlining.
        out = inline_calls(sample_program())
        assert out.count(VirtualCall) == 0


class TestDeadCode:
    def test_only_dead_removed(self):
        out = eliminate_dead_code(sample_program())
        assert out.count(Compute) == 2
        assert out.count(ParamRead) == 1


class TestReorderPass:
    def test_reorders_registry_layout(self):
        reg = registry()
        programs = [
            Program("a", [FieldAccess("Packet", "length"), FieldAccess("Packet", "length")]),
            Program("b", [FieldAccess("Packet", "data_ptr")]),
        ]
        new_layout = reorder_metadata(programs, reg)
        assert new_layout.offset_of("length") == 0
        assert reg.resolve("Packet", "length")[0] == 0

    def test_refuses_hardware_structs(self):
        reg = registry()
        with pytest.raises(ReorderError):
            reorder_metadata([], reg, struct="rte_mbuf")

    def test_unreferenced_struct_unchanged_order(self):
        reg = registry()
        before = [f.name for f in reg.get("Packet").fields]
        reorder_metadata([Program("empty")], reg)
        after = [f.name for f in reg.get("Packet").fields]
        assert before == after


class TestLowering:
    def test_field_access_resolved(self):
        out = lower(Program("p", [FieldAccess("Packet", "length", write=True)]), registry())
        assert out.mem_ops == [MemOp("packet_meta", 8, 4, True)]

    def test_lowering_sees_reordered_layout(self):
        reg = registry()
        program = Program("p", [FieldAccess("Packet", "length")])
        reorder_metadata([program], reg)
        out = lower(program, reg)
        assert out.mem_ops[0].offset == 0

    def test_instruction_accounting(self):
        out = lower(sample_program(), registry())
        # ParamRead: 1 + 2 folded; computes: 20+5+30; field access: 1;
        # data access: 1; virtual call: 8; branch: 1.
        assert out.instructions == pytest.approx(3 + 55 + 1 + 1 + 8 + 1)

    def test_branch_miss_accumulation(self):
        out = lower(sample_program(), registry())
        assert out.branch_miss_expect == pytest.approx(0.45 + 0.1)
        assert out.virtual_calls == 1

    def test_pool_ops(self):
        out = lower(Program("p", [PoolOp("get"), PoolOp("put"), PoolOp("put")]), registry())
        assert out.pool_gets == 1
        assert out.pool_puts == 2

    def test_pool_op_bad_kind(self):
        with pytest.raises(ValueError):
            lower(Program("p", [PoolOp("borrow")]), registry())

    def test_random_ops(self):
        out = lower(Program("p", [RandomAccess(1 << 20, count=5)]), registry())
        assert out.random_ops == [(1 << 20, 5)]
        assert out.instructions == 10

    def test_state_access(self):
        out = lower(Program("p", [StateAccess(32, 8, write=True)]), registry())
        assert out.mem_ops == [MemOp("state", 32, 8, True)]

    def test_bad_target_rejected(self):
        program = Program("p", [FieldAccess("Packet", "length", target="bogus")])
        with pytest.raises(ValueError):
            lower(program, registry())

    def test_footprint_lines(self):
        program = Program(
            "p",
            [
                FieldAccess("Packet", "cold"),
                FieldAccess("Packet", "length"),
                DataAccess(0, 64),
            ],
        )
        out = lower(program, registry())
        assert out.memory_footprint_lines("packet_meta") == 1
        assert out.memory_footprint_lines("data") == 1

    def test_full_pipeline_cost_reduction(self):
        """All passes together must strictly reduce instructions and misses."""
        reg = registry()
        base = lower(sample_program(), reg)
        optimized_ir = inline_calls(embed_constants(devirtualize(sample_program())))
        optimized = lower(optimized_ir, reg)
        assert optimized.instructions < base.instructions
        assert optimized.branch_miss_expect < base.branch_miss_expect
        assert len(optimized.mem_ops) < len(base.mem_ops)
