"""Tests for the pass manager."""

import pytest

from repro.compiler.ir import Compute, DirectCall, ParamRead, Program, VirtualCall
from repro.compiler.passes.transforms import DEAD_NOTE
from repro.compiler.pipeline import PassManager
from repro.core.options import BuildOptions


def sample():
    return Program("el", [
        VirtualCall("push"),
        ParamRead("p", offset=0),
        Compute(10, note=DEAD_NOTE),
        Compute(50),
    ])


class TestPassManager:
    def test_runs_in_order(self):
        manager = PassManager.from_options(BuildOptions.all_code_opts())
        names = [name for name, _ in manager.passes]
        assert names == ["devirtualize", "embed-constants", "dead-code", "inline"]

    def test_vanilla_is_empty_pipeline(self):
        manager = PassManager.from_options(BuildOptions.vanilla())
        assert manager.passes == []
        program = sample()
        assert manager.run(program) is program

    def test_records_deltas(self):
        manager = PassManager.from_options(BuildOptions.all_code_opts())
        out = manager.run(sample())
        assert out.count(VirtualCall) == 0
        assert out.count(DirectCall) == 0
        assert out.count(ParamRead) == 0
        devirt = [r for r in manager.records if r.pass_name == "devirtualize"][0]
        assert devirt.ops_before == devirt.ops_after  # replaced, not removed
        inline = [r for r in manager.records if r.pass_name == "inline"][0]
        assert inline.removed_ops == 1

    def test_total_removed(self):
        manager = PassManager.from_options(BuildOptions.all_code_opts())
        manager.run(sample())
        assert manager.total_removed_ops() == 3  # param, dead compute, call

    def test_report_lists_changes(self):
        manager = PassManager.from_options(BuildOptions.all_code_opts())
        manager.run(sample())
        report = manager.report()
        assert "devirtualize" in report
        assert "el" in report

    def test_driver_pipeline_vectorizes(self):
        options = BuildOptions(lto=True, vectorized_pmd=True)
        app = PassManager.from_options(options)
        driver = PassManager.from_options(options, driver_code=True)
        assert "vectorize" not in [n for n, _ in app.passes]
        assert "vectorize" in [n for n, _ in driver.passes]

    def test_pgo_included(self):
        manager = PassManager.from_options(BuildOptions(pgo=True))
        assert [n for n, _ in manager.passes] == ["pgo"]

    def test_binary_exposes_pass_manager(self):
        from repro.core import nfs
        from repro.core.packetmill import PacketMill
        from repro.hw.params import MachineParams

        binary = PacketMill(nfs.forwarder(), BuildOptions.all_code_opts(),
                            params=MachineParams()).build()
        assert binary.pass_manager.total_removed_ops() > 0
        assert "inline" in binary.pass_manager.report(only_changed=False)
