"""Trace-compiled kernels: generated-vs-interpreted bit-identity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import codegen
from repro.compiler.lower import (
    TARGET_DATA,
    TARGET_DESCRIPTOR,
    TARGET_PACKET_MBUF,
    TARGET_PACKET_META,
    TARGET_STATE,
    ExecProgram,
    MemOp,
)
from repro.compiler.runtime import execute_bases, execute_interpreted

TARGETS = (
    TARGET_PACKET_META,
    TARGET_PACKET_MBUF,
    TARGET_DESCRIPTOR,
    TARGET_DATA,
    TARGET_STATE,
)

mem_ops = st.lists(
    st.builds(
        MemOp,
        target=st.sampled_from(TARGETS),
        offset=st.integers(min_value=0, max_value=4096),
        size=st.sampled_from((1, 2, 4, 8, 16, 64)),
        write=st.booleans(),
    ),
    max_size=12,
)

random_ops = st.lists(
    st.tuples(
        st.integers(min_value=64, max_value=1 << 20),
        st.integers(min_value=1, max_value=12),
    ),
    max_size=3,
)

programs = st.builds(
    ExecProgram,
    name=st.just("prop"),
    instructions=st.floats(min_value=0.0, max_value=1e6,
                           allow_nan=False, allow_infinity=False),
    branch_miss_expect=st.floats(min_value=0.0, max_value=64.0,
                                 allow_nan=False, allow_infinity=False),
    mem_ops=mem_ops,
    random_ops=random_ops,
)


def _states(program, runner):
    cpu = codegen._shadow_cpu()
    runner(cpu)
    return codegen._shadow_state(cpu)


@settings(max_examples=60, deadline=None)
@given(program=programs)
def test_generated_kernels_match_both_interpreters(program):
    """The property behind the tier API: every random program charges the
    exact same state through generated code, the op-tuple loop, and the
    MemOp interpreter."""
    compiled = codegen.compile_program(program, check=False)
    meta, mbuf, descriptor, data, state = codegen._SHADOW_BASES

    reference = _states(program, lambda cpu: execute_interpreted(
        cpu, program, meta, mbuf, descriptor, data, state))
    tuples = _states(program, lambda cpu: execute_bases(
        cpu, program, meta, mbuf, descriptor, data, state))
    generated = _states(program, lambda cpu: compiled.scalar(
        cpu, meta, mbuf, descriptor, data, state))
    assert reference == tuples == generated

    batch = [
        codegen._ShadowPacket(
            codegen._ShadowRef(meta, mbuf, descriptor, data)),
        codegen._ShadowPacket(None),
    ]

    def run_batch_interpreted(cpu):
        for pkt in batch:
            ref = pkt.mbuf
            if ref is not None:
                execute_interpreted(cpu, program, ref.meta_addr,
                                    ref.mbuf_addr, ref.cqe_addr,
                                    ref.data_addr, state)
            else:
                execute_interpreted(cpu, program, 0, 0, 0, 0, state)

    assert _states(program, run_batch_interpreted) == _states(
        program, lambda cpu: compiled.batch(cpu, batch, state))


def test_constants_are_baked_into_the_source():
    program = ExecProgram(
        name="bake", instructions=37.0, branch_miss_expect=2.0,
        mem_ops=[MemOp(TARGET_PACKET_META, offset=24, size=8)],
        random_ops=[(4096, 2)],
    )
    source = codegen.generate_scalar_source(program, "_gen_bake")
    assert "37.0" in source
    assert "meta + 24" in source
    assert "4096" in source
    # Specialized code never walks the program: no loop over mem_ops.
    assert "mem_ops" not in source


def test_zero_charges_are_dead_code_eliminated():
    source = codegen.generate_scalar_source(
        ExecProgram(name="empty"), "_gen_empty")
    assert "cpu.instructions" not in source
    assert "_access" not in source


def test_compile_is_memoized_per_program():
    codegen.reset_stats()
    program = ExecProgram(name="memo", instructions=5.0)
    first = codegen.compile_program(program, check=False)
    second = codegen.compile_program(program, check=False)
    assert first is second
    assert codegen.stats()["compiles"] == 1
    assert codegen.stats()["memo_hits"] == 1


def test_selfcheck_refuses_a_wrong_kernel(monkeypatch):
    """A tampered emitter must fail the compile, not skew measurements."""
    real = codegen.generate_scalar_source

    def tampered(program, name):
        return real(program, name).replace("37.0", "38.0")

    monkeypatch.setattr(codegen, "generate_scalar_source", tampered)
    program = ExecProgram(name="tampered", instructions=37.0)
    with pytest.raises(codegen.CodegenError):
        codegen.compile_program(program, check=True)
    assert "_codegen_compiled" not in program.__dict__


def test_verify_hook_failure_surfaces_as_codegen_error():
    codegen.reset_stats()

    def refuse(program):
        raise ValueError("offset out of range")

    program = ExecProgram(name="refused", instructions=1.0)
    with pytest.raises(codegen.CodegenError, match="offset out of range"):
        codegen.compile_program(program, verify=refuse, check=False)


def test_verify_hook_runs_before_generation():
    calls = []
    program = ExecProgram(name="verified", instructions=1.0)
    codegen.compile_program(
        program, verify=lambda p: calls.append(p.name), check=True)
    assert calls == ["verified"]
