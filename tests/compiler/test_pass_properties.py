"""Property-based tests for the IR passes (semantic invariants)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.ir import (
    BranchHint,
    Compute,
    DataAccess,
    DirectCall,
    FieldAccess,
    ParamRead,
    PoolOp,
    Program,
    VirtualCall,
)
from repro.compiler.lower import lower
from repro.compiler.passes import (
    devirtualize,
    eliminate_dead_code,
    embed_constants,
    inline_calls,
    profile_guided,
    vectorize,
)
from repro.compiler.passes.transforms import DEAD_NOTE, FOLDABLE_NOTE
from repro.compiler.structlayout import Field, LayoutRegistry, StructLayout

# -- op strategies ------------------------------------------------------------

_ops = st.one_of(
    st.builds(Compute, st.floats(min_value=0, max_value=200),
              st.sampled_from(["", FOLDABLE_NOTE, DEAD_NOTE, "misc"])),
    st.builds(FieldAccess, st.just("Packet"), st.sampled_from(["length", "data_ptr"]),
              st.booleans()),
    st.builds(DataAccess, st.integers(min_value=0, max_value=100),
              st.integers(min_value=1, max_value=64), st.booleans()),
    st.builds(ParamRead, st.sampled_from(["a", "b"]), st.integers(min_value=0, max_value=64)),
    st.builds(VirtualCall, st.sampled_from(["push", "pull"])),
    st.builds(DirectCall, st.sampled_from(["f", "g"])),
    st.builds(BranchHint, st.floats(min_value=0, max_value=1)),
    st.builds(PoolOp, st.sampled_from(["get", "put"])),
)

programs = st.builds(Program, st.just("p"), st.lists(_ops, max_size=24))

PASSES = {
    "devirtualize": devirtualize,
    "embed_constants": embed_constants,
    "inline_calls": inline_calls,
    "dead_code": eliminate_dead_code,
    "vectorize": vectorize,
    "pgo": profile_guided,
}


def _registry():
    registry = LayoutRegistry()
    registry.register(StructLayout("Packet", [Field("length", 4), Field("data_ptr", 8)]))
    return registry


class TestPassProperties:
    @settings(max_examples=60, deadline=None)
    @given(programs, st.sampled_from(sorted(PASSES)))
    def test_passes_are_idempotent(self, program, pass_name):
        """Applying any pass twice equals applying it once (cost-wise)."""
        if pass_name in ("vectorize", "pgo"):
            return  # scaling passes are intentionally not idempotent
        fn = PASSES[pass_name]
        once = lower(fn(program), _registry())
        twice = lower(fn(fn(program)), _registry())
        assert once.instructions == twice.instructions
        assert once.mem_ops == twice.mem_ops
        assert once.branch_miss_expect == twice.branch_miss_expect

    @settings(max_examples=60, deadline=None)
    @given(programs, st.sampled_from(sorted(PASSES)))
    def test_passes_never_increase_cost(self, program, pass_name):
        """Every optimization is monotone: no metric gets worse."""
        fn = PASSES[pass_name]
        registry = _registry()
        before = lower(program, registry)
        after = lower(fn(program), registry)
        assert after.instructions <= before.instructions + 1e-9
        assert after.branch_miss_expect <= before.branch_miss_expect + 1e-9
        assert len(after.mem_ops) <= len(before.mem_ops)

    @settings(max_examples=60, deadline=None)
    @given(programs)
    def test_passes_preserve_memory_semantics(self, program):
        """Optimizations may drop parameter loads, but never the *packet*
        accesses that constitute the element's behaviour."""
        registry = _registry()
        before = lower(program, registry)
        optimized = inline_calls(embed_constants(devirtualize(program)))
        after = lower(optimized, registry)
        data_before = [op for op in before.mem_ops if op.target in ("data", "packet_meta")]
        data_after = [op for op in after.mem_ops if op.target in ("data", "packet_meta")]
        assert data_before == data_after

    @settings(max_examples=40, deadline=None)
    @given(programs)
    def test_devirtualize_removes_all_indirection(self, program):
        out = devirtualize(program)
        assert out.count(VirtualCall) == 0
        assert out.count(DirectCall) == program.count(DirectCall) + program.count(VirtualCall)

    @settings(max_examples=40, deadline=None)
    @given(programs)
    def test_embed_constants_removes_all_params(self, program):
        assert embed_constants(program).count(ParamRead) == 0

    @settings(max_examples=40, deadline=None)
    @given(programs)
    def test_pool_ops_survive_every_pass(self, program):
        """No pass may remove allocation behaviour (correctness!)."""
        for fn in PASSES.values():
            assert fn(program).count(PoolOp) == program.count(PoolOp)

    @settings(max_examples=40, deadline=None)
    @given(programs, st.floats(min_value=0.1, max_value=1.0))
    def test_vectorize_scales_linearly(self, program, factor):
        registry = _registry()
        base = lower(program, registry)
        scaled = lower(vectorize(program, factor), registry)
        compute_before = sum(
            op.instructions for op in program.ops if isinstance(op, Compute)
        )
        expected_drop = compute_before * (1 - factor)
        assert scaled.instructions == (
            __import__("pytest").approx(base.instructions - expected_drop, rel=1e-6, abs=1e-6)
        )
